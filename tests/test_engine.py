"""Tests for the parallel batch-compression engine and the unified codec API.

Covers the engine's four guarantees (future semantics, backpressure,
deterministic ordering, shared codebook cache), the single ``decompress``
front door across all three container kinds, the ``mode=`` config alias,
and the deprecation shims for the historical pwrel entry points.
"""

import threading
import warnings

import numpy as np
import pytest

import repro
from repro import telemetry as tel
from repro.core import pwrel as pwrel_mod
from repro.core.compressor import sniff_container
from repro.core.errors import ArchiveError, ConfigError
from repro.core.streaming import (
    StreamingCompressor,
    compress_blocks,
    decompress_blocks,
    decompress_blocks_with_stats,
)
from repro.engine import CompressionEngine
from repro.engine.cache import QuantCache, cache_scope, cached_codebook
from repro.telemetry import instruments as ins


def make_field(seed=0, shape=(96, 128)):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).astype(np.float32).cumsum(axis=1)


class TestEngineSemantics:
    def test_futures_resolve_in_submission_order(self):
        fields = [make_field(s) for s in range(5)]
        with CompressionEngine(repro.CompressorConfig(eb=1e-3), jobs=3) as eng:
            futures = eng.batch(fields)
            results = [f.result() for f in futures]
        expected = [repro.compress(f, eb=1e-3).archive for f in fields]
        assert [r.archive for r in results] == expected

    def test_map_matches_serial(self):
        fields = [make_field(s) for s in range(4)]
        with CompressionEngine(jobs=2) as eng:
            results = eng.map(fields, eb=1e-2, eb_mode="abs")
        for field, res in zip(fields, results):
            assert res.archive == repro.compress(field, eb=1e-2, mode="abs").archive

    def test_per_submit_overrides(self):
        field = make_field()
        with CompressionEngine(repro.CompressorConfig(eb=1e-3), jobs=2) as eng:
            loose = eng.submit(field, eb=1e-1).result()
            tight = eng.submit(field).result()
        assert len(loose.archive) < len(tight.archive)

    def test_submit_after_shutdown_raises(self):
        eng = CompressionEngine(jobs=1)
        eng.shutdown()
        assert eng.closed
        with pytest.raises(ConfigError, match="shut down"):
            eng.submit(make_field())

    def test_run_schedules_arbitrary_functions(self):
        with CompressionEngine(jobs=2) as eng:
            futures = [eng.run(lambda a, b: a + b, i, b=i * 10) for i in range(8)]
            assert [f.result() for f in futures] == [11 * i for i in range(8)]

    def test_run_executes_under_engine_cache_scope(self):
        from repro.engine.cache import active_cache

        with CompressionEngine(jobs=1) as eng:
            assert eng.run(lambda: active_cache() is eng.cache).result()

    def test_run_after_shutdown_raises(self):
        eng = CompressionEngine(jobs=1)
        eng.shutdown()
        with pytest.raises(ConfigError, match="shut down"):
            eng.run(int)

    def test_backpressure_bound_configuration(self):
        with pytest.raises(ConfigError, match="max_inflight"):
            CompressionEngine(jobs=4, max_inflight=2)

    def test_queue_depth_stays_within_inflight_bound(self, monkeypatch):
        """Backpressure, deterministically: park every worker on an Event so
        the inflight count is exact, then prove the next ``submit`` blocks
        until a slot frees.  No timing-sensitive sampling involved -- the
        only waits are ones that can end early iff backpressure is broken.
        """
        import repro.engine.core as engine_core

        gate = threading.Event()
        real_compress = engine_core.compress

        def gated_compress(data, cfg):
            assert gate.wait(timeout=30), "test gate never opened"
            return real_compress(data, cfg)

        monkeypatch.setattr(engine_core, "compress", gated_compress)
        fields = [make_field(s, shape=(16, 16)) for s in range(4)]
        eng = CompressionEngine(jobs=2, max_inflight=3)
        futures = []
        try:
            # Fill every backpressure slot; the workers are parked on the
            # gate, so depth is exactly max_inflight -- no race.
            for f in fields[:3]:
                futures.append(eng.submit(f, eb=1e-3))
            assert eng.queue_depth == 3

            # A fourth submit must block on the semaphore, not enqueue.
            unblocked = threading.Event()

            def submit_fourth():
                futures.append(eng.submit(fields[3], eb=1e-3))
                unblocked.set()

            producer = threading.Thread(target=submit_fourth, daemon=True)
            producer.start()
            assert not unblocked.wait(timeout=0.2), (
                "submit returned while all inflight slots were occupied"
            )
            assert eng.queue_depth == 3

            gate.set()  # release the workers; the blocked submit proceeds
            assert unblocked.wait(timeout=30), "submit never unblocked"
            producer.join(timeout=30)
            results = [f.result(timeout=30) for f in futures]
        finally:
            gate.set()
            eng.shutdown()
        assert len(results) == 4
        assert eng.queue_depth == 0

    def test_failed_job_releases_backpressure_slot_deterministically(
        self, monkeypatch
    ):
        """A worker that raises must free its slot: park one poisoned job on
        an Event, verify the slot is held, release it, and verify a new
        submit can claim the slot without blocking."""
        import repro.engine.core as engine_core

        gate = threading.Event()
        real_compress = engine_core.compress

        def poisoned_compress(data, cfg):
            assert gate.wait(timeout=30)
            if data.size == 1:
                raise ConfigError("poisoned job")
            return real_compress(data, cfg)

        monkeypatch.setattr(engine_core, "compress", poisoned_compress)
        eng = CompressionEngine(jobs=1, max_inflight=1)
        try:
            bad = eng.submit(np.zeros(1, dtype=np.float32), eb=1e-3, eb_mode="abs")
            assert eng.queue_depth == 1
            gate.set()
            with pytest.raises(ConfigError, match="poisoned"):
                bad.result(timeout=30)
            # The slot freed on failure: this submit must not deadlock.
            good = eng.submit(make_field(1, shape=(8, 8)), eb=1e-3)
            assert good.result(timeout=30).archive
        finally:
            gate.set()
            eng.shutdown()
        assert eng.queue_depth == 0

    def test_worker_error_surfaces_on_future(self):
        with CompressionEngine(jobs=1) as eng:
            fut = eng.submit(np.array([], dtype=np.float32))
            with pytest.raises(ConfigError):
                fut.result()
        # The failed job must have released its backpressure slot.
        assert eng.queue_depth == 0


class TestEngineTelemetry:
    def test_job_and_cache_counters(self):
        tel.reset_metrics()
        field = make_field()
        with tel.scope(True):
            with CompressionEngine(jobs=2) as eng:
                [f.result() for f in eng.batch([field, field, field], eb=1e-3)]
        assert ins.ENGINE_JOBS.value() == 3
        # Identical fields -> identical quant distributions -> cache hits.
        assert ins.ENGINE_CACHE_HITS.value() > 0
        assert ins.ENGINE_QUEUE_DEPTH.value() == 0.0

    def test_worker_spans_nest_under_caller_span(self):
        field = make_field(shape=(48, 48))
        with tel.scope(True), tel.trace("engine-test") as tr:
            with tel.span("batch_root"):
                with CompressionEngine(jobs=2) as eng:
                    [f.result() for f in eng.batch([field, field], eb=1e-3)]
        roots = [s for s in tr.roots if s.name == "batch_root"]
        assert len(roots) == 1
        compress_children = [c for c in roots[0].children if c.name == "compress"]
        assert len(compress_children) == 2


class TestEngineCache:
    def test_cache_reuses_codebooks(self):
        cache = QuantCache(16)
        freqs = np.array([5, 1, 0, 9, 3], dtype=np.int64)
        with cache_scope(cache):
            first = cached_codebook(freqs)
            second = cached_codebook(freqs.copy())
        assert first is second
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_cache_differentiates_distributions(self):
        cache = QuantCache(16)
        with cache_scope(cache):
            a = cached_codebook(np.array([5, 1, 9], dtype=np.int64))
            b = cached_codebook(np.array([5, 2, 9], dtype=np.int64))
        assert a is not b
        assert cache.stats.misses == 2

    def test_no_active_cache_falls_through(self):
        freqs = np.array([3, 3, 3], dtype=np.int64)
        a = cached_codebook(freqs)
        b = cached_codebook(freqs)
        assert a is not b  # no cache in scope: fresh construction each time

    def test_lru_eviction_bounds_memory(self):
        cache = QuantCache(2)
        with cache_scope(cache):
            for k in range(5):
                cached_codebook(np.array([1, k + 1], dtype=np.int64))
        assert len(cache) <= 2


class TestParallelByteIdentity:
    @pytest.mark.parametrize("workflow", ["huffman", "rle", "rle+vle"])
    def test_blocks_byte_identical_across_jobs(self, workflow):
        # FSDSC-like quantized-smooth data keeps RLE viable; huffman works
        # on anything.
        field = np.round(make_field(7, shape=(128, 96)), 1)
        config = repro.CompressorConfig(eb=1e-2, workflow=workflow)
        serial = compress_blocks(field, config, max_block_bytes=16384, jobs=1)
        for jobs in (2, 4):
            par = compress_blocks(field, config, max_block_bytes=16384, jobs=jobs)
            assert par == serial, f"jobs={jobs} container diverged"
        np.testing.assert_allclose(
            decompress_blocks(serial), field, atol=1e-2 * np.ptp(field)
        )

    def test_shared_engine_reuse_is_deterministic(self):
        field = make_field(9)
        config = repro.CompressorConfig(eb=1e-3)
        serial = compress_blocks(field, config, max_block_bytes=8192)
        with CompressionEngine(config, jobs=3) as eng:
            first = compress_blocks(field, config, max_block_bytes=8192, backend=eng)
            second = compress_blocks(field, config, max_block_bytes=8192, backend=eng)
        assert first == serial and second == serial

    def test_streaming_engine_matches_serial(self):
        config = repro.CompressorConfig(eb=1e-2, eb_mode="abs")
        chunks = [make_field(s, shape=(32, 64)) for s in range(6)]
        serial = StreamingCompressor(config)
        for c in chunks:
            serial.append(c)
        with StreamingCompressor(config, jobs=3) as parallel:
            for c in chunks:
                parallel.append(c)
        assert parallel.container == serial.finish()


class TestParallelDecode:
    """``decompress(jobs=N)`` fans v3 chunk groups / blocks across workers."""

    def _chunky_archive(self):
        # Small chunks so the single-field stream clears the chunk-group
        # dispatch threshold and actually splits.
        field = make_field(7, shape=(64, 64))
        res = repro.compress(field, eb=1e-3, huffman_chunk=128)
        return res.archive, field

    def test_jobs_decode_matches_serial(self):
        blob, _ = self._chunky_archive()
        serial = repro.decompress(blob)
        np.testing.assert_array_equal(repro.decompress(blob, jobs=2), serial)
        np.testing.assert_array_equal(repro.decompress(blob, jobs=4), serial)

    def test_shared_engine_decode_matches_serial(self):
        blob, _ = self._chunky_archive()
        serial = repro.decompress(blob)
        with CompressionEngine(jobs=2) as eng:
            np.testing.assert_array_equal(
                repro.decompress(blob, backend=eng), serial
            )
            assert not eng.closed  # caller-owned pools are left running

    def test_jobs_decode_blocks_container(self):
        field = make_field(3)
        blob = compress_blocks(field, repro.CompressorConfig(eb=1e-3),
                               max_block_bytes=16_000)
        np.testing.assert_array_equal(
            decompress_blocks(blob, jobs=2), decompress_blocks(blob)
        )

    def test_v2_archive_decodes_serially_under_jobs(self):
        # Pre-v3 payloads carry no sync points; jobs= must still give the
        # identical result (serial fallback), not an error.
        from repro.core.archive import pinned_format

        field = make_field(5)
        with pinned_format(version=2):
            blob = repro.compress(field, eb=1e-3, huffman_chunk=128).archive
        np.testing.assert_array_equal(
            repro.decompress(blob, jobs=2), repro.decompress(blob)
        )


class TestUnifiedFrontDoor:
    def test_sniff_and_decompress_all_container_kinds(self):
        field = np.abs(make_field(11)) + 0.5
        single = repro.compress(field, eb=1e-3).archive
        blocks = compress_blocks(field, max_block_bytes=8192, eb=1e-3)
        pw = repro.compress(field, eb=1e-3, mode="pwrel").archive
        assert sniff_container(single) == "single"
        assert sniff_container(blocks) == "blocks"
        assert sniff_container(pw) == "pwrel"
        for blob in (single, blocks, pw):
            out = repro.decompress(blob)
            assert out.shape == field.shape

    def test_garbage_blob_raises_archive_error_with_hint(self):
        with pytest.raises(ArchiveError):
            repro.decompress(b"not an archive at all")

    def test_framed_but_empty_blob_names_missing_sections(self):
        from repro.core.archive import ArchiveBuilder

        builder = ArchiveBuilder()
        builder.add_bytes("junk", b"\x00" * 16)
        with pytest.raises(ArchiveError, match="meta"):
            repro.decompress(builder.to_bytes())

    def test_truncated_archive_not_struct_error(self):
        blob = repro.compress(make_field(), eb=1e-3).archive
        for cut in (len(blob) // 3, len(blob) - 7):
            with pytest.raises(ArchiveError):
                repro.decompress(blob[:cut])

    def test_block_container_stats_aggregate(self):
        field = make_field(13)
        blob = compress_blocks(field, max_block_bytes=8192, eb=1e-3)
        res = decompress_blocks_with_stats(blob)
        assert res.data.shape == field.shape
        assert res.workflow in ("huffman", "rle", "rle+vle", "mixed")
        assert res.n_outliers >= 0
        assert "bmeta" in res.section_sizes

    def test_mode_alias_drives_pwrel(self):
        field = np.abs(make_field(17)) + 1.0
        cfg = repro.CompressorConfig(mode="pwrel", eb=1e-3)
        assert cfg.eb_mode == "pwrel"
        out = repro.decompress(repro.compress(field, cfg).archive)
        rel = np.abs(out - field) / np.abs(field)
        assert float(rel.max()) <= 1e-3

    def test_pwrel_mode_validation(self):
        with pytest.raises(ConfigError):
            repro.CompressorConfig(mode="pwrel", eb=1.5)
        with pytest.raises(ConfigError, match="absolute equivalent"):
            repro.CompressorConfig(mode="pwrel", eb=1e-3).absolute_bound(1.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            repro.CompressorConfig(mode="chebyshev")


class TestCompressorClass:
    def test_batch_futures_match_single_calls(self):
        fields = [make_field(s) for s in range(3)]
        with repro.Compressor(eb=1e-3, jobs=2) as comp:
            futures = comp.batch(fields)
            archives = [f.result().archive for f in futures]
        assert archives == [repro.compress(f, eb=1e-3).archive for f in fields]

    def test_compress_blocks_binds_config(self):
        field = make_field(4)
        comp = repro.Compressor(eb=1e-2, mode="abs", jobs=2)
        try:
            blob = comp.compress_blocks(field, max_block_bytes=8192)
        finally:
            comp.close()
        assert blob == compress_blocks(field, eb=1e-2, mode="abs", max_block_bytes=8192)

    def test_stream_context_manager(self):
        comp = repro.Compressor(eb=1e-2, mode="abs")
        with comp.stream() as stream:
            stream.append(make_field(1, shape=(16, 32)))
            stream.append(make_field(2, shape=(16, 32)))
        out = repro.decompress(stream.container)
        assert out.shape == (32, 32)

    def test_stream_rejects_range_relative_bound(self):
        with pytest.raises(ConfigError, match="range"):
            repro.Compressor(eb=1e-3).stream()

    def test_decompress_front_door_on_class(self):
        field = make_field(5)
        comp = repro.Compressor(eb=1e-3)
        res = comp.decompress_with_stats(comp.compress(field).archive)
        assert res.data.shape == field.shape


class TestDeprecatedShims:
    @pytest.fixture(autouse=True)
    def fresh_warning_state(self):
        saved = set(pwrel_mod._WARNED)
        pwrel_mod._WARNED.clear()
        yield
        pwrel_mod._WARNED.clear()
        pwrel_mod._WARNED.update(saved)

    def test_compress_pwrel_warns_exactly_once_and_roundtrips(self):
        field = np.abs(make_field(21)) + 1.0
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res = pwrel_mod.compress_pwrel(field, 1e-3)
            pwrel_mod.compress_pwrel(field, 1e-3)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1
        assert "mode=\"pwrel\"" in str(dep[0].message)
        # The shim's output is identical to the unified path's.
        assert res.archive == repro.compress(field, eb=1e-3, mode="pwrel").archive

    def test_decompress_pwrel_warns_exactly_once_and_roundtrips(self):
        field = np.abs(make_field(22)) + 1.0
        blob = repro.compress(field, eb=1e-3, mode="pwrel").archive
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out = pwrel_mod.decompress_pwrel(blob)
            pwrel_mod.decompress_pwrel(blob)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1
        rel = np.abs(out - field) / np.abs(field)
        assert float(rel.max()) <= 1e-3

    def test_internal_paths_do_not_warn(self):
        field = np.abs(make_field(23)) + 1.0
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            blob = repro.compress(field, eb=1e-3, mode="pwrel").archive
            repro.decompress(blob)
