"""Tests for entropy and Huffman-redundancy bounds (Section III-B.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.entropy import (
    GALLAGER_CONSTANT,
    binary_entropy,
    bitlen_bounds,
    redundancy_lower,
    redundancy_upper,
    shannon_entropy,
)
from repro.core.errors import EncodingError
from repro.encoding.huffman import build_codebook


class TestEntropy:
    def test_uniform(self):
        assert shannon_entropy(np.full(8, 10)) == pytest.approx(3.0)

    def test_single_symbol_zero_entropy(self):
        assert shannon_entropy(np.array([0, 100, 0])) == 0.0

    def test_empty_raises(self):
        with pytest.raises(EncodingError):
            shannon_entropy(np.zeros(4))

    def test_binary_entropy_symmetry_and_peak(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)
        assert binary_entropy(0.1) == pytest.approx(binary_entropy(0.9))
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_binary_entropy_domain(self):
        with pytest.raises(ValueError):
            binary_entropy(1.5)


class TestRedundancyBounds:
    def test_upper_is_gallager(self):
        assert redundancy_upper(0.3) == pytest.approx(0.3 + GALLAGER_CONSTANT)

    def test_lower_zero_below_threshold(self):
        assert redundancy_lower(0.3) == 0.0
        assert redundancy_lower(0.4) == 0.0

    def test_lower_positive_above_threshold(self):
        assert redundancy_lower(0.9) > 0.0

    def test_bounds_bracket_true_huffman_redundancy(self):
        """H + R- <= ⟨b⟩ <= H + R+ on many skewed histograms."""
        rng = np.random.default_rng(0)
        for trial in range(20):
            skew = rng.uniform(0.5, 3.0)
            freqs = np.maximum((1e6 / np.arange(1, 65) ** skew).astype(np.int64), 1)
            rng.shuffle(freqs)
            h, p1, lower, upper = bitlen_bounds(freqs)
            book = build_codebook(freqs)
            avg = book.average_bit_length(freqs)
            assert lower - 1e-9 <= avg <= upper + 1e-9, (trial, p1, avg, lower, upper)

    def test_bounds_with_dominant_symbol(self):
        """Extreme p1: the regime where the RLE rule fires."""
        freqs = np.array([10_000_000, 10, 10, 10])
        h, p1, lower, upper = bitlen_bounds(freqs)
        assert p1 > 0.99
        book = build_codebook(freqs)
        avg = book.average_bit_length(freqs)
        assert lower - 1e-9 <= avg <= upper + 1e-9
        assert lower <= 1.09  # would select RLE

    def test_one_bit_floor(self):
        """⟨b⟩ lower bound never drops below 1 bit (prefix-code floor)."""
        freqs = np.array([1_000_000, 1])
        _, _, lower, _ = bitlen_bounds(freqs)
        assert lower >= 1.0

    @given(st.lists(st.integers(1, 10**6), min_size=2, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_bracket_property(self, freq_list):
        freqs = np.array(freq_list, dtype=np.int64)
        _, _, lower, upper = bitlen_bounds(freqs)
        avg = build_codebook(freqs).average_bit_length(freqs)
        assert lower - 1e-9 <= avg <= upper + 1e-9
