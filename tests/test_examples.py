"""Smoke tests: the example scripts run to completion.

Examples are documentation that executes; these tests keep them green.
Each script is run in-process via runpy with a fresh __main__ namespace.
Only the fast ones run here (the GPU-model and dataset-heavy examples are
exercised indirectly through the bench tests).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.skipif(not EXAMPLES.exists(), reason="examples directory missing")
class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "OK: pointwise error bound verified." in out

    def test_insitu_simulation(self, capsys):
        out = _run("insitu_simulation.py", capsys)
        assert "snapshots:" in out
        assert "bound ok: True" in out

    def test_parallel_checkpoint(self, capsys):
        out = _run("parallel_checkpoint.py", capsys)
        assert "full restore verified" in out
        assert "partial restore" in out

    def test_rate_distortion_study(self, capsys):
        out = _run("rate_distortion_study.py", capsys)
        assert "cuSZ+ (error-bounded):" in out
        assert "ZFP-like" in out

    def test_example_scripts_have_docstrings(self):
        for script in EXAMPLES.glob("*.py"):
            head = script.read_text().split('"""')
            assert len(head) >= 3, f"{script.name} lacks a module docstring"
            assert "Run:" in head[1], f"{script.name} docstring lacks a Run: line"
