"""Tests for the /metrics HTTP exporter, the Prometheus text format
contract (promtool-style lint), and the structured JSON log lines."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro
from repro import telemetry as tel
from repro.telemetry import instruments as ins
from repro.telemetry.exposition import MetricsServer, lint_prometheus
from repro.telemetry.metrics import MetricsRegistry, render_prometheus


@pytest.fixture(autouse=True)
def _fresh_metrics():
    tel.reset_metrics()
    yield
    tel.reset_metrics()


def populate_registry():
    field = np.sin(np.linspace(0, 8, 4096)).astype(np.float32).reshape(64, 64)
    with tel.scope(True):  # instruments only tick when telemetry is on
        repro.compress(field, eb=1e-3)


class TestPrometheusFormat:
    """Satellite: render_prometheus emits # TYPE/# HELP once per family
    and terminates with a newline, promtool-style."""

    def test_headers_once_per_family_and_trailing_newline(self):
        populate_registry()
        text = render_prometheus()
        assert text.endswith("\n")
        lines = text.splitlines()
        types = [ln.split()[2] for ln in lines if ln.startswith("# TYPE ")]
        helps = [ln.split()[2] for ln in lines if ln.startswith("# HELP ")]
        assert len(types) == len(set(types)), "duplicate # TYPE family"
        assert len(helps) == len(set(helps)), "duplicate # HELP family"
        assert set(types) == set(helps)

    def test_help_precedes_type_precedes_samples(self):
        populate_registry()
        text = render_prometheus()
        assert lint_prometheus(text) == []

    def test_histogram_suffixes_resolve_to_family(self):
        reg = MetricsRegistry()
        h = reg.histogram("demo_seconds", "demo", buckets=(0.1, 1.0))
        h.observe(0.05)
        text = reg.render_prometheus()
        assert "# TYPE demo_seconds histogram" in text
        assert "demo_seconds_bucket" in text
        assert "demo_seconds_count" in text
        assert lint_prometheus(text) == []

    def test_empty_registry_renders_clean(self):
        reg = MetricsRegistry()
        text = reg.render_prometheus()
        assert lint_prometheus(text) == []

    def test_lint_catches_missing_newline(self):
        assert lint_prometheus("# TYPE x counter\nx 1") != []

    def test_lint_catches_duplicate_type(self):
        bad = "# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n"
        assert any("duplicate # TYPE" in p for p in lint_prometheus(bad))

    def test_lint_catches_headerless_sample(self):
        assert any(
            "no # TYPE" in p for p in lint_prometheus("mystery_total 3\n")
        )

    def test_lint_catches_type_after_samples(self):
        bad = "x 1\n# TYPE x counter\n"
        problems = lint_prometheus(bad)
        assert problems  # sample before its header


class TestMetricsServer:
    def test_scrape_metrics_over_http(self):
        populate_registry()
        with MetricsServer() as srv:
            with urllib.request.urlopen(srv.url + "/metrics") as resp:
                assert resp.status == 200
                ctype = resp.headers["Content-Type"]
                body = resp.read().decode()
        assert "version=0.0.4" in ctype
        assert body.endswith("\n")
        assert "repro_compress_calls_total 1" in body
        assert lint_prometheus(body) == []

    def test_scrape_json(self):
        populate_registry()
        with MetricsServer() as srv:
            with urllib.request.urlopen(srv.url + "/metrics.json") as resp:
                snapshot = json.loads(resp.read())
        assert snapshot["repro_compress_calls_total"]["type"] == "counter"

    def test_healthz_and_404(self):
        with MetricsServer() as srv:
            with urllib.request.urlopen(srv.url + "/healthz") as resp:
                assert resp.read() == b"ok\n"
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(srv.url + "/nope")
            assert exc.value.code == 404

    def test_ephemeral_port_resolves(self):
        srv = MetricsServer(port=0)
        assert srv.port == 0
        with srv:
            assert srv.port != 0
            assert srv.url == f"http://127.0.0.1:{srv.port}"

    def test_double_start_raises(self):
        with MetricsServer() as srv:
            with pytest.raises(RuntimeError):
                srv.start()

    def test_stop_is_idempotent(self):
        srv = MetricsServer().start()
        srv.stop()
        srv.stop()

    def test_custom_registry(self):
        reg = MetricsRegistry()
        reg.counter("private_total", "private").inc(7)
        with MetricsServer(registry=reg) as srv:
            body = urllib.request.urlopen(srv.url + "/metrics").read().decode()
        assert "private_total 7" in body
        assert "repro_compress_calls_total" not in body

    def test_live_updates_between_scrapes(self):
        with MetricsServer() as srv:
            before = urllib.request.urlopen(srv.url + "/metrics").read().decode()
            populate_registry()
            after = urllib.request.urlopen(srv.url + "/metrics").read().decode()
        assert "repro_compress_calls_total 0" in before
        assert "repro_compress_calls_total 1" in after


class TestStructuredLog:
    def test_off_by_default(self, capsys):
        from repro.telemetry.log import get_logger

        get_logger("test").event("nothing.happens", x=1)
        assert capsys.readouterr().err == ""

    def test_file_sink_emits_span_correlated_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", str(tmp_path / "log.jsonl"))
        from repro.telemetry.log import get_logger

        log = get_logger("test.sink")
        with tel.scope(True), tel.span("outer"):
            log.event("unit.test", answer=42)
        log.event("unit.test", answer=43)
        lines = [
            json.loads(ln)
            for ln in (tmp_path / "log.jsonl").read_text().splitlines()
        ]
        assert len(lines) == 2
        assert lines[0]["event"] == "unit.test"
        assert lines[0]["logger"] == "test.sink"
        assert lines[0]["span"] == "outer"
        assert lines[0]["answer"] == 42
        assert lines[1]["span"] is None

    def test_server_requests_logged(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", str(tmp_path / "log.jsonl"))
        with MetricsServer() as srv:
            urllib.request.urlopen(srv.url + "/healthz").read()
        events = [
            json.loads(ln)["event"]
            for ln in (tmp_path / "log.jsonl").read_text().splitlines()
        ]
        assert "server.start" in events
        assert "server.request" in events
        assert "server.stop" in events


class TestSharedRegistry:
    """Satellite: the MetricsServer exporter and the compression front
    door's /metrics endpoint must render ONE process-global registry --
    importing/booting both never double-registers a family."""

    def test_obs_exporter_and_front_door_share_one_registry(self):
        from repro.server import CompressionServer, ServerConfig

        config = ServerConfig(port=0, jobs=1, backend="serial", max_inflight=2)
        with MetricsServer() as obs, CompressionServer(config) as front:
            # Tick a server instrument through the front door...
            front_text = (
                urllib.request.urlopen(front.address + "/healthz").read()
                and urllib.request.urlopen(front.address + "/metrics")
                .read().decode()
            )
            # ...and the obs exporter must see the same sample.
            obs_text = urllib.request.urlopen(obs.url + "/metrics").read().decode()
        for text in (front_text, obs_text):
            assert "repro_server_requests_total" in text
            assert lint_prometheus(text) == [], "double-registered family"
        front_families = {
            ln.split()[2] for ln in front_text.splitlines()
            if ln.startswith("# TYPE ")
        }
        obs_families = {
            ln.split()[2] for ln in obs_text.splitlines()
            if ln.startswith("# TYPE ")
        }
        assert front_families == obs_families

    def test_reimporting_instruments_is_idempotent(self):
        import importlib

        before = ins.SERVER_REQUESTS
        importlib.reload(ins)
        assert ins.SERVER_REQUESTS is before  # same family object, no fork
        assert lint_prometheus(render_prometheus()) == []

    def test_counter_reregistration_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("shared_total", "first registration")
        b = reg.counter("shared_total", "second registration ignored")
        assert a is b
        a.inc()
        assert b.total() == 1.0

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("shape_shifter", "")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("shape_shifter", "")

    def test_histogram_bucket_mismatch_raises(self):
        """Regression: silently returning the existing histogram under
        different buckets would fork the series between exporters."""
        reg = MetricsRegistry()
        reg.histogram("latency_seconds", "", buckets=(0.1, 1.0))
        with pytest.raises(ValueError, match="buckets"):
            reg.histogram("latency_seconds", "", buckets=(0.5, 5.0))
        # Same buckets (any ordering) is the dedupe path, not an error.
        again = reg.histogram("latency_seconds", "", buckets=(1.0, 0.1))
        again.observe(0.05)
        assert lint_prometheus(reg.render_prometheus()) == []
