"""Failure injection: corrupted inputs must fail *controlledly*.

The contract: any corrupted archive either decodes (possibly to wrong
values -- lossy data has no checksum by design) or raises a
:class:`repro.ReproError` subclass.  It must never escape with an
``IndexError``/``ValueError``/segfault-shaped failure from deep inside
NumPy, because downstream tooling dispatches on the exception type.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.errors import ReproError


@pytest.fixture(scope="module")
def archives():
    """One archive per workflow/predictor family."""
    rng = np.random.default_rng(0)
    x = np.linspace(0, 8, 150)
    smooth = (np.sin(x)[:, None] * np.cos(x)[None, :] + 0.01 * rng.normal(size=(150, 150))).astype(
        np.float32
    )
    sparse = np.zeros((150, 150), dtype=np.float32)
    sparse[30:60, 40:100] = 3.0
    out = {
        "huffman": repro.compress(smooth, eb=1e-3, workflow="huffman").archive,
        "rle": repro.compress(sparse, eb=1e-2, workflow="rle").archive,
        "rle+vle": repro.compress(sparse, eb=1e-2, workflow="rle+vle").archive,
        "huffman+lz": repro.compress(smooth, eb=1e-2, workflow="huffman+lz").archive,
        "regression": repro.compress(smooth, eb=1e-3, predictor="regression").archive,
    }
    return out


def _attempt(blob: bytes) -> str:
    """Decode and classify the outcome."""
    try:
        repro.decompress(blob)
        return "decoded"
    except ReproError:
        return "repro-error"
    except (struct_error := __import__("struct").error):  # noqa: F841
        return "struct-error"


class TestTruncation:
    @pytest.mark.parametrize("workflow", ["huffman", "rle", "rle+vle", "huffman+lz", "regression"])
    def test_every_truncation_point_controlled(self, archives, workflow):
        blob = archives[workflow]
        points = np.linspace(1, len(blob) - 1, 40, dtype=int)
        for cut in points:
            outcome = _attempt(blob[:cut])
            assert outcome in ("repro-error",), (workflow, cut, outcome)

    def test_empty_blob(self):
        assert _attempt(b"") == "repro-error"


class TestBitflips:
    @pytest.mark.parametrize("workflow", ["huffman", "rle", "rle+vle"])
    def test_random_single_byte_corruption(self, archives, workflow):
        rng = np.random.default_rng(42)
        blob = bytearray(archives[workflow])
        for _ in range(60):
            pos = int(rng.integers(0, len(blob)))
            old = blob[pos]
            blob[pos] = int(rng.integers(0, 256))
            outcome = _attempt(bytes(blob))
            # Wrong values are acceptable; uncontrolled exceptions are not.
            assert outcome in ("decoded", "repro-error"), (workflow, pos, outcome)
            blob[pos] = old

    def test_zeroed_section_table(self, archives):
        blob = bytearray(archives["huffman"])
        blob[16:40] = b"\x00" * 24
        assert _attempt(bytes(blob)) == "repro-error"

    @given(st.binary(min_size=0, max_size=400))
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_bytes_never_crash(self, blob):
        assert _attempt(blob) in ("decoded", "repro-error")


class TestHostileMetadata:
    def test_shape_overflow_rejected(self, archives):
        """Inflating the shape in the meta section must not allocate wild."""
        from repro.core.archive import ArchiveBuilder, ArchiveReader

        reader = ArchiveReader(archives["huffman"])
        builder = ArchiveBuilder()
        for name in reader.names():
            raw = reader.get_bytes(name)
            if name == "meta":
                raw = bytearray(raw)
                # shape starts after 4 u8 + 3 u32 = 16 bytes; blow up dim 0
                raw[16:24] = (2**60).to_bytes(8, "little")
                raw = bytes(raw)
            builder.add_bytes(name, raw)
        assert _attempt(builder.to_bytes()) == "repro-error"

    def test_wrong_outlier_count_rejected(self, archives):
        from repro.core.archive import ArchiveBuilder, ArchiveReader

        reader = ArchiveReader(archives["huffman"])
        builder = ArchiveBuilder()
        for name in reader.names():
            raw = reader.get_bytes(name)
            if name == "meta":
                raw = bytearray(raw)
                # n_outliers is the third-from-last u64 block (before eb_abs).
                raw[-16:-8] = (12345).to_bytes(8, "little")
                raw = bytes(raw)
            builder.add_bytes(name, raw)
        assert _attempt(builder.to_bytes()) == "repro-error"
