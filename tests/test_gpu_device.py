"""Tests for device specs, launch geometry and occupancy."""

import pytest

from repro.core.errors import DeviceError
from repro.gpu.device import A100, V100, get_device
from repro.gpu.kernel import KernelProfile, LaunchConfig, occupancy


class TestDeviceSpecs:
    def test_presets_match_published_specs(self):
        assert V100.mem_bw == 900e9
        assert A100.mem_bw == 1555e9
        assert V100.sm_count == 80
        assert A100.sm_count == 108

    def test_bandwidth_ratio_is_paper_scaling_axis(self):
        assert A100.mem_bw / V100.mem_bw == pytest.approx(1.728, abs=0.01)

    def test_issue_rate_ratio(self):
        """SM x clock ratio ~1.24: the 'decode stagnates' axis."""
        assert A100.issue_rate / V100.issue_rate == pytest.approx(1.244, abs=0.01)

    def test_lookup(self):
        assert get_device("v100") is V100
        assert get_device("A100") is A100
        with pytest.raises(DeviceError):
            get_device("TPUv7")

    def test_ramp_bytes_larger_on_a100(self):
        """The faster part needs more in-flight data to saturate."""
        assert A100.ramp_bytes > V100.ramp_bytes


class TestLaunchConfig:
    def test_total_threads(self):
        lc = LaunchConfig(grid_blocks=10, threads_per_block=256)
        assert lc.total_threads == 2560

    def test_rejects_empty_launch(self):
        with pytest.raises(DeviceError):
            LaunchConfig(grid_blocks=0, threads_per_block=256)

    def test_rejects_oversized_block(self):
        with pytest.raises(DeviceError):
            LaunchConfig(grid_blocks=1, threads_per_block=2048)

    def test_rejects_negative_shared(self):
        with pytest.raises(DeviceError):
            LaunchConfig(grid_blocks=1, threads_per_block=32, shared_per_block=-1)


class TestOccupancy:
    def test_full_occupancy_small_blocks(self):
        lc = LaunchConfig(grid_blocks=1000, threads_per_block=256)
        assert occupancy(V100, lc) == 1.0

    def test_shared_memory_limits_occupancy(self):
        # 48 KB per block on a 96 KB SM -> 2 blocks -> 512 threads of 2048.
        lc = LaunchConfig(grid_blocks=1000, threads_per_block=256,
                          shared_per_block=48 * 1024)
        assert occupancy(V100, lc) == pytest.approx(512 / 2048)

    def test_oversized_shared_raises(self):
        lc = LaunchConfig(grid_blocks=1, threads_per_block=32,
                          shared_per_block=200 * 1024)
        with pytest.raises(DeviceError):
            occupancy(V100, lc)

    def test_warp_limit(self):
        # 1024-thread blocks = 32 warps; warp limit 64 -> 2 blocks resident.
        lc = LaunchConfig(grid_blocks=10, threads_per_block=1024)
        assert occupancy(V100, lc) == 1.0


class TestKernelProfile:
    def _launch(self):
        return LaunchConfig(grid_blocks=100, threads_per_block=256)

    def test_effective_traffic_inflates_uncoalesced(self):
        p = KernelProfile(
            name="k", payload_bytes=100, bytes_read=100, bytes_written=100,
            launch=self._launch(), coalescing_read=0.5, coalescing_write=0.25,
        )
        assert p.effective_traffic == pytest.approx(100 / 0.5 + 100 / 0.25)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(DeviceError):
            KernelProfile(
                name="k", payload_bytes=1, bytes_read=1, bytes_written=1,
                launch=self._launch(), mem_efficiency=0.0,
            )

    def test_rejects_negative_bytes(self):
        with pytest.raises(DeviceError):
            KernelProfile(
                name="k", payload_bytes=-1, bytes_read=1, bytes_written=1,
                launch=self._launch(),
            )
