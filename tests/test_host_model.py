"""Tests for the host-stage (PCIe + CPU codec) cost model."""

import pytest

from repro.gpu.device import A100, V100
from repro.gpu.host_model import (
    PCIE3_HOST,
    PCIE4_HOST,
    host_link_for,
    host_stage_time,
)


class TestHostModel:
    def test_transfer_plus_codec(self):
        xfer, codec = host_stage_time(12_000_000_000, PCIE3_HOST, codec="zstd")
        assert xfer == pytest.approx(1.0)  # 12 GB over 12 GB/s
        assert codec == pytest.approx(24.0)  # over 500 MB/s

    def test_gzip_much_slower_than_zstd(self):
        _, zstd = host_stage_time(10**9, PCIE3_HOST, codec="zstd")
        _, gzip = host_stage_time(10**9, PCIE3_HOST, codec="gzip")
        assert gzip > 4 * zstd

    def test_link_matches_device_generation(self):
        assert host_link_for(V100) is PCIE3_HOST
        assert host_link_for(A100) is PCIE4_HOST

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            host_stage_time(-1, PCIE3_HOST)

    def test_host_stage_dwarfs_gpu_kernels(self):
        """The Section III-A.3 argument: for a 1 GB payload the host stage
        costs seconds while the GPU pipeline costs tens of milliseconds."""
        xfer, codec = host_stage_time(10**9, PCIE3_HOST, codec="zstd")
        gpu_time = 4 * 10**9 / (50e9)  # 4 GB field at ~50 GB/s overall
        assert xfer + codec > 10 * gpu_time
