"""Tests for canonical Huffman codebooks and the chunked codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.entropy import shannon_entropy
from repro.core.errors import CodebookOverflowError, EncodingError
from repro.encoding.huffman import (
    CanonicalCodebook,
    build_code_lengths,
    build_codebook,
    build_decode_table,
    lookup_codes,
)
from repro.encoding.huffman_codec import (
    decode,
    decode_lockstep,
    decode_sequential,
    encode,
    split_chunk_groups,
)


def random_symbols(rng, n, alphabet, skew=1.5):
    """Zipf-ish symbol stream over [0, alphabet)."""
    p = 1.0 / np.arange(1, alphabet + 1) ** skew
    p /= p.sum()
    return rng.choice(alphabet, size=n, p=p).astype(np.uint16)


class TestCodeLengths:
    def test_kraft_equality(self):
        """Huffman codes are complete: sum 2^-L == 1."""
        rng = np.random.default_rng(0)
        freqs = rng.integers(1, 1000, 64)
        lengths = build_code_lengths(freqs)
        assert abs(sum(2.0 ** -int(l) for l in lengths if l > 0) - 1.0) < 1e-12

    def test_single_symbol(self):
        lengths = build_code_lengths(np.array([0, 5, 0]))
        np.testing.assert_array_equal(lengths, [0, 1, 0])

    def test_two_symbols(self):
        lengths = build_code_lengths(np.array([3, 7]))
        np.testing.assert_array_equal(lengths, [1, 1])

    def test_zero_histogram_raises(self):
        with pytest.raises(EncodingError):
            build_code_lengths(np.zeros(8, dtype=np.int64))

    def test_rarer_symbols_get_longer_codes(self):
        freqs = np.array([1000, 100, 10, 1])
        lengths = build_code_lengths(freqs)
        assert lengths[0] <= lengths[1] <= lengths[2] <= lengths[3]

    def test_optimality_vs_entropy(self):
        """Average length within [H, H+1) (Huffman's classical guarantee)."""
        rng = np.random.default_rng(1)
        freqs = rng.integers(1, 10_000, 256)
        book = build_codebook(freqs)
        h = shannon_entropy(freqs)
        avg = book.average_bit_length(freqs)
        assert h - 1e-9 <= avg < h + 1.0

    def test_deterministic(self):
        freqs = np.array([5, 5, 5, 5, 2, 2])
        a = build_code_lengths(freqs)
        b = build_code_lengths(freqs)
        np.testing.assert_array_equal(a, b)


class TestCanonicalCodebook:
    def test_prefix_free(self):
        rng = np.random.default_rng(2)
        freqs = rng.integers(0, 500, 128)
        freqs[::7] = 0
        book = build_codebook(freqs)
        entries = [
            (int(book.lengths[s]), int(book.codes[s]))
            for s in np.flatnonzero(book.lengths > 0)
        ]
        for la, ca in entries:
            for lb, cb in entries:
                if (la, ca) == (lb, cb):
                    continue
                if la <= lb:
                    assert (cb >> (lb - la)) != ca, "prefix violation"

    def test_canonical_same_length_consecutive(self):
        freqs = np.array([10, 10, 10, 10])
        book = build_codebook(freqs)
        codes = sorted(int(c) for c in book.codes)
        assert codes == [0, 1, 2, 3]

    def test_serialization_roundtrip(self):
        rng = np.random.default_rng(3)
        freqs = rng.integers(0, 100, 1024)
        book = build_codebook(freqs)
        restored = CanonicalCodebook.deserialized(book.serialized())
        np.testing.assert_array_equal(restored.lengths, book.lengths)
        np.testing.assert_array_equal(restored.codes, book.codes)
        assert restored.max_length == book.max_length

    def test_serialized_size_is_alphabet_bytes(self):
        book = build_codebook(np.ones(1024, dtype=np.int64))
        assert len(book.serialized()) == 1024

    def test_lookup_rejects_unknown_symbol(self):
        book = build_codebook(np.array([1, 1, 0, 0]))
        with pytest.raises(CodebookOverflowError):
            lookup_codes(book, np.array([2], dtype=np.uint16))

    def test_lookup_rejects_out_of_alphabet(self):
        book = build_codebook(np.array([1, 1]))
        with pytest.raises(CodebookOverflowError):
            lookup_codes(book, np.array([17], dtype=np.uint16))


class TestCodecRoundtrip:
    @pytest.mark.parametrize("n,alphabet,chunk", [
        (1, 4, 8),
        (100, 16, 32),
        (10_000, 1024, 1024),
        (5_000, 1024, 4096),   # single partial chunk
        (4096, 8, 4096),       # exactly one chunk
        (4097, 8, 4096),       # one full + one singleton chunk
    ])
    def test_roundtrip(self, n, alphabet, chunk):
        rng = np.random.default_rng(n)
        syms = random_symbols(rng, n, alphabet)
        freqs = np.bincount(syms, minlength=alphabet)
        book = build_codebook(freqs)
        enc = encode(syms, book, chunk)
        np.testing.assert_array_equal(decode(enc, book), syms)

    def test_lockstep_matches_sequential(self):
        rng = np.random.default_rng(9)
        syms = random_symbols(rng, 3000, 64)
        book = build_codebook(np.bincount(syms, minlength=64))
        enc = encode(syms, book, 256)
        np.testing.assert_array_equal(decode(enc, book), decode_sequential(enc, book))

    def test_payload_bits_match_codebook_estimate(self):
        rng = np.random.default_rng(4)
        syms = random_symbols(rng, 2000, 32)
        freqs = np.bincount(syms, minlength=32)
        book = build_codebook(freqs)
        enc = encode(syms, book, 512)
        assert enc.total_bits == book.encoded_bits(freqs)

    def test_single_symbol_stream(self):
        syms = np.full(500, 3, dtype=np.uint16)
        book = build_codebook(np.bincount(syms, minlength=8))
        enc = encode(syms, book, 64)
        assert enc.total_bits == 500  # 1 bit per symbol
        np.testing.assert_array_equal(decode(enc, book), syms)

    def test_empty_stream_raises(self):
        book = build_codebook(np.array([1, 1]))
        with pytest.raises(EncodingError):
            encode(np.zeros(0, dtype=np.uint16), book, 8)

    def test_corrupt_chunk_bits_detected(self):
        rng = np.random.default_rng(5)
        syms = random_symbols(rng, 1000, 16)
        book = build_codebook(np.bincount(syms, minlength=16))
        enc = encode(syms, book, 128)
        enc.chunk_bits = enc.chunk_bits.copy()
        enc.chunk_bits[0] += 3
        with pytest.raises(EncodingError):
            decode(enc, book)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data):
        n = data.draw(st.integers(1, 800))
        alphabet = data.draw(st.integers(2, 64))
        chunk = data.draw(st.integers(1, 900))
        syms = data.draw(
            st.lists(st.integers(0, alphabet - 1), min_size=n, max_size=n)
        )
        syms = np.array(syms, dtype=np.uint16)
        book = build_codebook(np.bincount(syms, minlength=alphabet))
        enc = encode(syms, book, chunk)
        np.testing.assert_array_equal(decode(enc, book), syms)


class TestLengthTableValidation:
    def test_overfull_first_level_rejected(self):
        # Three 1-bit codes cannot exist; a crafted length table must fail
        # with a typed error, not assign colliding codewords.
        with pytest.raises(EncodingError, match="over-full"):
            CanonicalCodebook.deserialized(bytes([1, 1, 1]))

    def test_overfull_intermediate_level_rejected(self):
        # Two 1-bit codes fill the tree; any deeper entry overflows level 2.
        with pytest.raises(EncodingError, match="over-full"):
            CanonicalCodebook.deserialized(bytes([1, 1, 2, 2, 2]))

    def test_incomplete_table_still_accepted(self):
        # Under-full (non-Kraft-complete) tables are legal: they decode, the
        # unused value range is simply never produced by an honest encoder.
        book = CanonicalCodebook.deserialized(bytes([2, 2, 2]))
        assert book.max_length == 2

    def test_boundary_table_overflow_guarded(self):
        # first_code[2] == 2 shifted to a 70-bit peek exceeds int64; the
        # typed guard must fire instead of an uncaught OverflowError.
        book = CanonicalCodebook.deserialized(bytes([1, 2, 2]))
        with pytest.raises(EncodingError, match="too deep"):
            book.decode_boundaries(70)

    def test_deepest_valid_chain_has_monotone_boundaries(self):
        # A 63-deep Kraft-complete chain is the worst legal case for the
        # int64 boundary table: it must build with ascending boundaries.
        lengths = list(range(1, 63)) + [63, 63]
        book = CanonicalCodebook.deserialized(bytes(lengths))
        boundaries, _, _ = book.decode_boundaries(63)
        assert np.all(np.diff(boundaries) > 0)


class TestDeepCodebookFallback:
    """Books deeper than the 56-bit packed peek use the bit-array path."""

    LENGTHS = list(range(1, 58)) + [58, 58]  # Kraft-complete chain, depth 58

    def _book(self):
        return CanonicalCodebook.deserialized(bytes(self.LENGTHS))

    def test_decode_falls_back_and_roundtrips(self):
        book = self._book()
        assert book.max_length == 58  # deeper than the packed-peek window
        syms = np.array([0, 1, 0, 57, 58, 2, 0, 0, 1, 56], dtype=np.uint16)
        enc = encode(syms, book, 3)
        np.testing.assert_array_equal(decode(enc, book), syms)
        np.testing.assert_array_equal(decode_lockstep(enc, book), syms)
        np.testing.assert_array_equal(decode_sequential(enc, book), syms)

    def test_corruption_still_detected_on_fallback_path(self):
        book = self._book()
        syms = np.array([0, 57, 0, 58], dtype=np.uint16)
        enc = encode(syms, book, 2)
        enc.chunk_bits = enc.chunk_bits.copy()
        enc.chunk_bits[-1] += 1
        with pytest.raises(EncodingError):
            decode(enc, book)


class TestAlignedLayout:
    """Format-v3 indexed payload: byte-aligned chunks with sync points."""

    def _stream(self, n=2000, alphabet=64, chunk=128, seed=21):
        rng = np.random.default_rng(seed)
        syms = random_symbols(rng, n, alphabet)
        book = build_codebook(np.bincount(syms, minlength=alphabet))
        return syms, book, encode(syms, book, chunk, aligned=True)

    def test_offsets_are_exclusive_byte_cumsum(self):
        _, _, enc = self._stream()
        byte_lens = (enc.chunk_bits.astype(np.int64) + 7) >> 3
        expected = np.concatenate(([0], np.cumsum(byte_lens)[:-1]))
        np.testing.assert_array_equal(enc.chunk_offsets.astype(np.int64), expected)
        assert enc.payload_bytes == int(byte_lens.sum())

    def test_all_decoders_agree_on_aligned_payload(self):
        syms, book, enc = self._stream()
        table = build_decode_table(book)
        np.testing.assert_array_equal(decode(enc, book, table=table), syms)
        np.testing.assert_array_equal(decode_lockstep(enc, book), syms)
        np.testing.assert_array_equal(decode_sequential(enc, book), syms)

    def test_aligned_metadata_accounts_for_offsets(self):
        _, _, enc = self._stream()
        n_chunks = enc.chunk_bits.size
        assert enc.metadata_bytes == n_chunks * 4 + n_chunks * 8

    @pytest.mark.parametrize("n_groups", [1, 2, 3, 7, 100])
    def test_split_groups_concat_reproduces_serial(self, n_groups):
        syms, book, enc = self._stream(n=1111, chunk=64)
        groups = split_chunk_groups(enc, n_groups)
        assert len(groups) <= max(1, min(n_groups, enc.chunk_bits.size))
        parts = [decode(g, book) for g in groups]
        np.testing.assert_array_equal(np.concatenate(parts), syms)

    def test_split_requires_sync_points(self):
        rng = np.random.default_rng(5)
        syms = random_symbols(rng, 500, 16)
        book = build_codebook(np.bincount(syms, minlength=16))
        enc = encode(syms, book, 64)  # dense layout, no offsets
        with pytest.raises(EncodingError, match="sync points"):
            split_chunk_groups(enc, 2)

    def test_unordered_sync_points_rejected(self):
        _, book, enc = self._stream()
        bad = enc.chunk_offsets.astype(np.int64)
        bad[1], bad[2] = bad[2], bad[1]
        enc.chunk_offsets = bad.astype(np.uint64)
        with pytest.raises(EncodingError, match="sync points"):
            decode(enc, book)
