"""Tests for archive inspection."""

import numpy as np
import pytest

import repro
from repro.core.errors import ArchiveError
from repro.core.inspect import inspect_archive


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(0)
    x = np.linspace(0, 9, 200)
    return (np.sin(x)[:, None] * np.cos(x)[None, :] * 2 + rng.normal(0, 0.01, (200, 200))).astype(
        np.float32
    )


class TestInspect:
    def test_basic_fields(self, field):
        res = repro.compress(field, eb=1e-3)
        stats = inspect_archive(res.archive)
        assert stats.total_bytes == len(res.archive)
        assert stats.original_bytes == field.nbytes
        assert stats.compression_ratio == pytest.approx(res.compression_ratio)
        assert stats.shape == (200, 200)
        assert stats.workflow == res.workflow
        assert stats.eb_abs == pytest.approx(res.eb_abs)

    def test_quant_stats_match_selector(self, field):
        res = repro.compress(field, eb=1e-3)
        stats = inspect_archive(res.archive)
        # The selector's p1/entropy are recomputable from the archive alone.
        assert stats.p1 == pytest.approx(res.diagnostics.p1, rel=1e-9)
        assert stats.entropy == pytest.approx(res.diagnostics.entropy, rel=1e-9)

    def test_payload_near_entropy(self, field):
        """Huffman payload within ~15% of the entropy bound (multi-byte VLE
        is near-optimal at realistic entropies)."""
        res = repro.compress(field, eb=1e-3, workflow="huffman")
        stats = inspect_archive(res.archive)
        assert -1.0 < stats.entropy_gap_percent < 15.0

    @pytest.mark.parametrize("wf", ["huffman", "rle", "rle+vle", "huffman+lz"])
    def test_all_workflows_inspectable(self, wf):
        data = np.zeros((200, 200), dtype=np.float32)
        data[50:90, 20:160] = 4.0
        res = repro.compress(data, eb=1e-2, workflow=wf)
        stats = inspect_archive(res.archive)
        assert stats.workflow == wf
        assert stats.p1 > 0.9  # sparse field

    def test_breakdown_sums_to_total(self, field):
        res = repro.compress(field, eb=1e-3)
        stats = inspect_archive(res.archive)
        total = sum(size for _, size, _ in stats.breakdown())
        assert total == stats.total_bytes

    def test_report_renders(self, field):
        res = repro.compress(field, eb=1e-3)
        text = inspect_archive(res.archive).report()
        assert "sections" in text and "p1=" in text

    def test_container_rejected(self, field):
        from repro.core.streaming import compress_blocks

        blob = compress_blocks(field, eb=1e-3, max_block_bytes=40_000)
        with pytest.raises(ArchiveError):
            inspect_archive(blob)

    def test_cli_stats(self, field, tmp_path, capsys):
        from repro.cli import main

        archive = tmp_path / "f.rpsz"
        archive.write_bytes(repro.compress(field, eb=1e-3).archive)
        assert main(["stats", str(archive)]) == 0
        assert "payload" in capsys.readouterr().out
