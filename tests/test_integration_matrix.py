"""Cross-feature integration: every feature pair that can combine, does.

Each cell of the matrix is a full compress -> decompress round trip with
the bound verified; the point is that orthogonal features (predictors,
workflows, dtypes, dimensionalities, block containers, dictionary stage)
compose without hidden coupling.
"""

import numpy as np
import pytest

import repro
from repro.core.config import CompressorConfig
from repro.core.streaming import compress_blocks, decompress_blocks


def _field(shape, kind, rng):
    if kind == "smooth":
        base = rng.normal(size=shape)
        from scipy import ndimage

        f = ndimage.gaussian_filter(base, sigma=3.0)
        return (f / max(f.std(), 1e-9)).astype(np.float32)
    if kind == "sparse":
        f = np.zeros(shape, dtype=np.float32)
        sl = tuple(slice(s // 4, s // 2) for s in shape)
        f[sl] = 5.0
        return f
    if kind == "gradient":
        grids = np.meshgrid(*[np.arange(s, dtype=np.float64) for s in shape], indexing="ij")
        g = sum((i + 1) * 0.37 * x for i, x in enumerate(grids))
        return (g + rng.normal(0, 0.8, shape)).astype(np.float32)
    raise AssertionError(kind)


@pytest.mark.parametrize("workflow", ["huffman", "rle", "rle+vle", "huffman+lz"])
@pytest.mark.parametrize("predictor", ["lorenzo", "regression"])
@pytest.mark.parametrize("kind", ["smooth", "sparse", "gradient"])
def test_workflow_x_predictor_x_content(workflow, predictor, kind):
    rng = np.random.default_rng(hash((workflow, predictor, kind)) % 2**31)
    data = _field((60, 80), kind, rng)
    res = repro.compress(data, eb=1e-3, workflow=workflow, predictor=predictor)
    out = repro.decompress(res.archive)
    assert np.abs(data.astype(np.float64) - out.astype(np.float64)).max() <= res.eb_abs
    assert res.workflow == workflow and res.predictor == predictor


@pytest.mark.parametrize("ndim", [1, 2, 3, 4])
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_ndim_x_dtype(ndim, dtype):
    rng = np.random.default_rng(ndim * 10 + (dtype == np.float64))
    shape = {1: (4000,), 2: (60, 70), 3: (18, 20, 22), 4: (6, 8, 10, 12)}[ndim]
    data = rng.normal(size=shape).astype(dtype)
    res = repro.compress(data, eb=1e-4)
    out = repro.decompress(res.archive)
    assert out.dtype == dtype
    assert np.abs(data.astype(np.float64) - out.astype(np.float64)).max() <= res.eb_abs


@pytest.mark.parametrize("workflow", ["huffman", "rle+vle"])
def test_blocks_x_workflow(workflow):
    rng = np.random.default_rng(5)
    data = np.zeros((300, 120), dtype=np.float32)
    data[40:200, 30:90] = 2.5
    data += rng.normal(0, 1e-4, data.shape).astype(np.float32)
    blob = compress_blocks(data, CompressorConfig(eb=1e-2, workflow=workflow),
                           max_block_bytes=40_000)
    out = decompress_blocks(blob)
    assert np.abs(data - out).max() <= 1e-2 * float(data.max() - data.min())


def test_blocks_x_regression():
    rng = np.random.default_rng(6)
    xx, yy = np.meshgrid(np.arange(200), np.arange(90), indexing="ij")
    data = (0.4 * xx - 0.2 * yy + rng.normal(0, 1.0, (200, 90))).astype(np.float32)
    blob = compress_blocks(
        data, CompressorConfig(eb=1e-3, predictor="regression"), max_block_bytes=30_000
    )
    out = decompress_blocks(blob)
    assert np.abs(data - out).max() <= 1e-3 * float(data.max() - data.min())


def test_pwrel_x_workflow_forced():
    rng = np.random.default_rng(7)
    data = (10.0 ** rng.uniform(-4, 4, (100, 100))).astype(np.float32)
    for wf in ("huffman", "rle+vle"):
        res = repro.compress(data, CompressorConfig(workflow=wf, eb=1e-2, mode="pwrel"))
        out = repro.decompress(res.archive)
        rel = np.abs(out.astype(np.float64) - data) / np.abs(data)
        assert float(rel.max()) <= 1e-2


def test_custom_chunks_x_predictors():
    rng = np.random.default_rng(8)
    data = rng.normal(size=(64, 64)).astype(np.float32)
    for predictor in ("lorenzo", "regression"):
        res = repro.compress(
            data, eb=1e-3, chunks=(32, 32), predictor=predictor
        )
        out = repro.decompress(res.archive)
        assert np.abs(data - out).max() <= res.eb_abs


def test_dict_size_x_workflows():
    rng = np.random.default_rng(9)
    data = rng.normal(size=(5000,)).astype(np.float32)
    for dict_size in (64, 256, 4096):
        for wf in ("huffman", "rle"):
            res = repro.compress(data, eb=1e-3, dict_size=dict_size, workflow=wf)
            out = repro.decompress(res.archive)
            assert np.abs(data - out).max() <= res.eb_abs


def test_autotune_x_pwrel_interplay():
    """Tuned rel bound and pwrel bound coexist on the same field."""
    from repro.analysis.autotune import tune_for_psnr

    rng = np.random.default_rng(10)
    data = (1.0 + np.abs(rng.normal(0, 2, (120, 120)))).astype(np.float32)
    tuned = tune_for_psnr(data, 70.0)
    assert tuned.satisfied
    res = repro.compress(data, eb=max(tuned.eb, 1e-5), mode="pwrel")
    out = repro.decompress(res.archive)
    rel = np.abs(out.astype(np.float64) - data) / np.abs(data)
    assert float(rel.max()) <= max(tuned.eb, 1e-5)
