"""Unit tests for archive format v2, checksums, and deep verification."""

import numpy as np
import pytest

import repro
from repro.core.archive import ArchiveBuilder, ArchiveReader, VERSION
from repro.core.errors import ArchiveError, IntegrityError
from repro.core.integrity import (
    ALGO_CRC32,
    ALGO_CRC32C,
    IntegrityReport,
    _crc32c_software,
    checksum,
    crc32c,
    flip_bit,
    verify_archive,
)


class TestCrc32c:
    """Known-answer vectors for the CRC-32C (Castagnoli) implementation."""

    VECTORS = [
        (b"", 0x00000000),
        (b"123456789", 0xE3069283),  # the classic check value
        (b"a", 0xC1D04330),
        (b"The quick brown fox jumps over the lazy dog", 0x22620404),
        (b"\x00" * 32, 0x8A9136AA),
        (b"\xff" * 32, 0x62A8AB43),
    ]

    @pytest.mark.parametrize("data,expected", VECTORS)
    def test_software_vectors(self, data, expected):
        assert _crc32c_software(data) == expected

    @pytest.mark.parametrize("data,expected", VECTORS)
    def test_dispatch_matches_software(self, data, expected):
        assert crc32c(data) == expected

    def test_incremental_matches_oneshot(self):
        data = bytes(range(256)) * 7
        # Software path supports chaining through the crc argument.
        part = _crc32c_software(data[100:], _crc32c_software(data[:100]))
        assert part == _crc32c_software(data)

    def test_unaligned_tail(self):
        for n in range(1, 24):
            data = bytes(range(n))
            assert crc32c(data) == _crc32c_software(data)

    def test_unknown_algo_rejected(self):
        with pytest.raises(ArchiveError):
            checksum(b"x", 99)


class TestV2Format:
    def test_default_version_is_3(self):
        blob = ArchiveBuilder().add_bytes("a", b"x").to_bytes()
        reader = ArchiveReader(blob)
        assert reader.version == VERSION == 3
        assert reader.checksum_algo in (ALGO_CRC32, ALGO_CRC32C)

    def test_v1_still_writable_and_readable(self):
        arr = np.arange(64, dtype=np.uint32)
        blob = ArchiveBuilder(version=1).add_array("a", arr).add_bytes("b", b"yo").to_bytes()
        reader = ArchiveReader(blob)
        assert reader.version == 1
        np.testing.assert_array_equal(reader.get_array("a"), arr)
        assert reader.get_bytes("b") == b"yo"
        reader.verify_all()  # no checksums to check; must not raise

    def test_v1_report_has_no_checksums(self):
        blob = ArchiveBuilder(version=1).add_bytes("a", b"x").to_bytes()
        report = verify_archive(blob)
        assert report.version == 1 and report.checksum_algo == "none"

    def test_v2_smaller_overhead_is_accounted(self):
        b = ArchiveBuilder().add_bytes("a", b"x" * 10).add_bytes("b", b"y" * 5)
        blob = b.to_bytes()
        assert len(blob) == b.overhead_bytes + 15

    def test_explicit_algo_roundtrip(self):
        for algo in (ALGO_CRC32, ALGO_CRC32C):
            blob = ArchiveBuilder(checksum_algo=algo).add_bytes("a", b"data").to_bytes()
            reader = ArchiveReader(blob)
            assert reader.checksum_algo == algo
            assert reader.get_bytes("a") == b"data"

    def test_bad_version_rejected(self):
        with pytest.raises(ArchiveError):
            ArchiveBuilder(version=4)

    def test_bad_algo_rejected(self):
        with pytest.raises(ArchiveError):
            ArchiveBuilder(checksum_algo=42)

    def test_payload_flip_raises_integrity_error(self):
        blob = ArchiveBuilder().add_bytes("a", b"sensitive-payload").to_bytes()
        bad = flip_bit(blob, 8 * (len(blob) - 4))
        with pytest.raises(IntegrityError):
            ArchiveReader(bad).get_bytes("a")

    def test_header_flip_raises_integrity_error(self):
        blob = ArchiveBuilder().add_bytes("abc", b"x" * 50).to_bytes()
        bad = flip_bit(blob, 8 * 30)  # inside the section table
        with pytest.raises(ArchiveError):
            ArchiveReader(bad)

    def test_truncation_and_extension_rejected(self):
        blob = ArchiveBuilder().add_bytes("a", b"0123456789").to_bytes()
        with pytest.raises(ArchiveError):
            ArchiveReader(blob[:-1])
        with pytest.raises(ArchiveError):
            ArchiveReader(blob + b"j")

    def test_misaligned_array_section_rejected(self):
        blob = ArchiveBuilder().add_bytes("x", b"12345").to_bytes()
        reader = ArchiveReader(blob)
        # Rewrite the dtype tag to u4 via a rebuilt v1 archive so only the
        # alignment check (5 % 4 != 0) can fire.
        from repro.core.archive import _ENTRY_V1, _HEADER_V1, MAGIC
        import struct

        v1 = struct.pack("<8sHI", MAGIC, 1, 1) + _ENTRY_V1.pack(
            b"x".ljust(16, b"\x00"), b"<u4".ljust(8, b"\x00"), 5
        ) + b"12345"
        with pytest.raises(ArchiveError, match="not a multiple"):
            ArchiveReader(v1).get_array("x")
        assert reader.get_bytes("x") == b"12345"

    def test_aligned_array_readback_unchanged(self):
        arr = np.linspace(0, 1, 33, dtype=np.float32)
        blob = ArchiveBuilder().add_array("f", arr).to_bytes()
        np.testing.assert_array_equal(ArchiveReader(blob).get_array("f"), arr)


class TestVerifyArchive:
    def test_single_field_report(self, field_2d):
        res = repro.compress(field_2d, eb=1e-3)
        report = verify_archive(res.archive)
        assert isinstance(report, IntegrityReport)
        assert report.kind == "single-field"
        assert report.section_bytes == res.section_sizes
        assert "integrity OK" not in report.summary()  # summary is structural

    def test_blocks_report_recurses(self, field_2d):
        from repro.core.streaming import compress_blocks

        blob = compress_blocks(field_2d, eb=1e-3, max_block_bytes=16_000)
        report = verify_archive(blob, deep=True)
        assert report.kind == "blocks"
        assert len(report.nested) >= 2
        assert all(r.kind == "single-field" for r in report.nested.values())
        shallow = verify_archive(blob, deep=False)
        assert shallow.nested == {}

    def test_checkpoint_report_recurses(self, field_2d):
        from repro.core.config import CompressorConfig
        from repro.parallel import run_spmd, slab_for_rank, write_checkpoint

        config = CompressorConfig(eb=1e-3)
        blob = run_spmd(
            2,
            lambda c: write_checkpoint(
                c, slab_for_rank(field_2d, 2, c.rank).copy(), config
            ),
        )[0]
        report = verify_archive(blob, deep=True)
        assert report.kind == "checkpoint"
        assert set(report.nested) == {"r0", "r1"}

    def test_pwrel_report_recurses(self):
        data = np.geomspace(1e-3, 1e3, 2048).astype(np.float32)
        res = repro.compress(data, eb=1e-3, mode="pwrel")
        report = verify_archive(res.archive, deep=True)
        assert report.kind == "pwrel"
        assert "pw.inner" in report.nested

    def test_missing_block_detected(self, field_2d):
        from repro.core.streaming import compress_blocks

        blob = compress_blocks(field_2d, eb=1e-3, max_block_bytes=16_000)
        reader = ArchiveReader(blob)
        builder = ArchiveBuilder()
        for name in reader.names():
            if name == "blk1":
                continue
            builder.add_bytes(name, reader.get_bytes(name))
        with pytest.raises(ArchiveError, match="blk1"):
            verify_archive(builder.to_bytes())

    def test_verify_does_not_decompress(self, field_2d, monkeypatch):
        import repro.core.compressor as comp

        res = repro.compress(field_2d, eb=1e-3)
        monkeypatch.setattr(
            comp, "decompress", lambda *a, **k: pytest.fail("decompress called")
        )
        monkeypatch.setattr(
            comp, "_decompress_impl", lambda *a, **k: pytest.fail("decode called")
        )
        verify_archive(res.archive, deep=True)
