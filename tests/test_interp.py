"""Tests for the SZ3-style multi-level interpolation predictor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

import repro
from repro.core.errors import ConfigError, DimensionalityError
from repro.core.interp import interp_construct, interp_reconstruct
from repro.data.synthetic import smooth_field


class TestInterpRoundtrip:
    @pytest.mark.parametrize("shape", [
        (1,), (2,), (7,), (64,), (100,),
        (16, 16), (33, 47), (1, 50),
        (8, 9, 10), (32, 32, 32), (5, 1, 7),
    ])
    @pytest.mark.parametrize("cubic", [False, True])
    def test_exact_inverse(self, shape, cubic):
        rng = np.random.default_rng(hash(shape) % 2**31)
        x = rng.integers(-10_000, 10_000, shape).astype(np.int64)
        d = interp_construct(x, cubic=cubic)
        np.testing.assert_array_equal(interp_reconstruct(d, cubic=cubic), x)

    def test_rejects_4d(self):
        with pytest.raises(DimensionalityError):
            interp_construct(np.zeros((2, 2, 2, 2), dtype=np.int64))

    def test_anchor_points_carry_raw_values(self):
        x = np.arange(64, dtype=np.int64) * 7
        d = interp_construct(x)
        assert d[0] == x[0]  # the coarse anchor

    def test_linear_ramp_perfectly_predicted(self):
        """A linear ramp has zero residual everywhere but the anchors."""
        x = (np.arange(65, dtype=np.int64)) * 4
        d = interp_construct(x, cubic=False)
        nonzero = np.count_nonzero(d)
        assert nonzero <= 4  # anchors + parity rounding

    @given(
        hnp.arrays(np.int64, st.tuples(st.integers(1, 20), st.integers(1, 20)),
                   elements=st.integers(-10**6, 10**6))
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property_2d(self, x):
        for cubic in (False, True):
            d = interp_construct(x, cubic=cubic)
            np.testing.assert_array_equal(interp_reconstruct(d, cubic=cubic), x)


class TestInterpPipeline:
    def test_bound_holds(self):
        f = (smooth_field((128, 128), 10.0, np.random.default_rng(0)) * 5).astype(np.float32)
        res = repro.compress(f, eb=1e-3, predictor="interp")
        assert res.predictor == "interp"
        out = repro.decompress(res.archive)
        assert np.abs(f.astype(np.float64) - out.astype(np.float64)).max() <= res.eb_abs

    def test_interp_beats_lorenzo_on_smooth(self):
        f = (smooth_field((256, 256), 20.0, np.random.default_rng(1)) * 5).astype(np.float32)
        cr = {
            p: repro.compress(f, eb=1e-3, predictor=p).compression_ratio
            for p in ("lorenzo", "interp")
        }
        assert cr["interp"] > 1.2 * cr["lorenzo"]

    def test_lorenzo_beats_interp_on_random_walk(self):
        """Brownian-like data: increments are white, so the one-step Lorenzo
        stencil is optimal while coarse-level interpolation residuals grow
        like the bridge variance (~stride)."""
        rng = np.random.default_rng(2)
        f = np.cumsum(rng.normal(size=8192)).astype(np.float32)
        cr = {
            p: repro.compress(f, eb=1e-4, predictor=p).compression_ratio
            for p in ("lorenzo", "interp")
        }
        assert cr["lorenzo"] > cr["interp"]

    def test_auto_considers_interp(self):
        f = (smooth_field((256, 256), 20.0, np.random.default_rng(3)) * 5).astype(np.float32)
        res = repro.compress(f, eb=1e-3, predictor="auto")
        assert res.predictor == "interp"

    def test_interp_3d(self):
        f = (smooth_field((32, 32, 32), 5.0, np.random.default_rng(4)) * 2).astype(np.float32)
        res = repro.compress(f, eb=1e-3, predictor="interp")
        out = repro.decompress(res.archive)
        assert np.abs(f.astype(np.float64) - out.astype(np.float64)).max() <= res.eb_abs

    def test_interp_rejects_4d_field(self):
        rng = np.random.default_rng(5)
        f = rng.normal(size=(4, 4, 4, 4)).astype(np.float32)
        with pytest.raises(ConfigError):
            repro.compress(f, eb=1e-3, predictor="interp")

    def test_auto_4d_falls_back(self):
        rng = np.random.default_rng(6)
        f = rng.normal(size=(6, 6, 6, 6)).astype(np.float32)
        res = repro.compress(f, eb=1e-3, predictor="auto")
        assert res.predictor in ("lorenzo", "regression")
