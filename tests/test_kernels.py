"""Tests for the simulated kernels: correctness of results + sane profiles."""

import numpy as np
import pytest

from repro.core.config import CompressorConfig
from repro.core.dual_quant import quantize_field, reconstruct_field
from repro.gpu.costmodel import CostModel
from repro.gpu.device import A100, V100
from repro.kernels import (
    gather_outlier_kernel,
    histogram_kernel,
    huffman_decode_kernel,
    huffman_encode_kernel,
    lorenzo_construct_kernel,
    lorenzo_reconstruct_kernel,
    rle_decode_kernel,
    rle_kernel,
    scatter_outlier_kernel,
)


@pytest.fixture(scope="module")
def config():
    return CompressorConfig(eb=1e-3)


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(0)
    x = np.linspace(0, 10, 256)
    return (np.sin(x)[:, None] * np.cos(x)[None, :] + 0.005 * rng.normal(size=(256, 256))).astype(
        np.float32
    )


@pytest.fixture(scope="module")
def bundle(field, config):
    b, _, _ = lorenzo_construct_kernel(field, config)
    return b


class TestConstructKernel:
    def test_matches_core_quantize(self, field, config):
        b_kernel, eb1, _ = lorenzo_construct_kernel(field, config)
        b_core, eb2 = quantize_field(field, config)
        assert eb1 == eb2
        np.testing.assert_array_equal(b_kernel.quant, b_core.quant)

    def test_profile_traffic_matches_sizes(self, field, config):
        _, _, prof = lorenzo_construct_kernel(field, config)
        assert prof.payload_bytes == field.nbytes
        assert prof.bytes_read == field.nbytes
        assert prof.bytes_written >= field.size * 2

    def test_n_sim_scales_profile(self, field, config):
        _, _, small = lorenzo_construct_kernel(field, config)
        _, _, big = lorenzo_construct_kernel(field, config, n_sim=field.size * 10)
        assert big.payload_bytes == 10 * small.payload_bytes

    def test_cusz_slower_than_ours(self, field, config):
        model = CostModel(V100)
        _, _, ours = lorenzo_construct_kernel(field, config, impl="cuszplus", n_sim=10**8)
        _, _, base = lorenzo_construct_kernel(field, config, impl="cusz", n_sim=10**8)
        assert model.time(ours).gbps > model.time(base).gbps


class TestReconstructKernel:
    @pytest.mark.parametrize("variant", ["coarse", "naive", "optimized"])
    def test_all_variants_identical_output(self, bundle, field, config, variant):
        out, _ = lorenzo_reconstruct_kernel(bundle, variant=variant)
        assert np.abs(field.astype(np.float64) - out.astype(np.float64)).max() <= config.eb * (
            field.max() - field.min()
        )

    def test_variants_agree_bitwise(self, bundle):
        outs = [
            lorenzo_reconstruct_kernel(bundle, variant=v)[0]
            for v in ("coarse", "naive", "optimized")
        ]
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[0], outs[2])

    def test_unknown_variant(self, bundle):
        with pytest.raises(ValueError):
            lorenzo_reconstruct_kernel(bundle, variant="quantum")

    def test_coarse_much_slower(self, bundle):
        model = CostModel(V100)
        _, coarse = lorenzo_reconstruct_kernel(bundle, variant="coarse", n_sim=10**8)
        _, opt = lorenzo_reconstruct_kernel(bundle, variant="optimized", n_sim=10**8)
        assert model.time(opt).gbps > 3 * model.time(coarse).gbps


class TestHuffmanKernels:
    def test_encode_decode_roundtrip(self, bundle, config):
        book, encoded, _ = huffman_encode_kernel(bundle.quant, config)
        out, _ = huffman_decode_kernel(encoded, book)
        np.testing.assert_array_equal(out, bundle.quant.reshape(-1))

    def test_cusz_encode_flat_ours_varies(self, config):
        """cuSZ encode throughput ~independent of data; ours tracks payload."""
        model = CostModel(V100)
        rng = np.random.default_rng(1)
        smooth = np.full(1 << 16, 512, dtype=np.uint16)
        smooth[::97] = 513
        rough = rng.integers(0, 1024, 1 << 16).astype(np.uint16)
        gbps = {}
        for name, q in (("smooth", smooth), ("rough", rough)):
            for impl in ("cusz", "cuszplus"):
                _, _, prof = huffman_encode_kernel(q, config, impl=impl, n_sim=10**8)
                gbps[(name, impl)] = model.time(prof).gbps
        flat_ratio = gbps[("smooth", "cusz")] / gbps[("rough", "cusz")]
        ours_ratio = gbps[("smooth", "cuszplus")] / gbps[("rough", "cuszplus")]
        assert 0.9 < flat_ratio < 1.1
        assert ours_ratio > 1.5

    def test_decode_serial_bound_scaling(self, bundle, config):
        book, encoded, _ = huffman_encode_kernel(bundle.quant, config, n_sim=10**8)
        _, prof = huffman_decode_kernel(encoded, book, n_sim=10**8)
        v = CostModel(V100).time(prof)
        a = CostModel(A100).time(prof)
        assert v.bound == "serial"
        assert 1.1 < a.gbps / v.gbps < 1.35


class TestOutlierKernels:
    def test_gather_returns_bundle_outliers(self, bundle):
        (idx, vals), prof = gather_outlier_kernel(bundle)
        np.testing.assert_array_equal(idx, bundle.outlier_indices)
        assert prof.bytes_read == int(np.prod(bundle.shape)) * 4

    def test_scatter_fuses_correctly(self, bundle, field):
        fused, _ = scatter_outlier_kernel(
            bundle.quant, bundle.outlier_indices, bundle.outlier_values, bundle.radius
        )
        from repro.core.dual_quant import fuse_quant_and_outliers

        expected = fuse_quant_and_outliers(
            bundle.quant, bundle.outlier_indices, bundle.outlier_values, bundle.radius
        )
        np.testing.assert_array_equal(fused, expected.reshape(-1))

    def test_scatter_memory_bound_scaling(self, bundle):
        _, prof = scatter_outlier_kernel(
            bundle.quant, bundle.outlier_indices, bundle.outlier_values,
            bundle.radius, n_sim=10**8,
        )
        v = CostModel(V100).time(prof).gbps
        a = CostModel(A100).time(prof).gbps
        assert a > 1.3 * v


class TestHistogramRleKernels:
    def test_histogram_counts_match(self, bundle, config):
        freqs, prof = histogram_kernel(bundle.quant, config.dict_size)
        np.testing.assert_array_equal(
            freqs, np.bincount(bundle.quant.reshape(-1), minlength=config.dict_size)
        )
        assert 0.0 <= prof.atomic_contention <= 0.6

    def test_rle_roundtrip(self, bundle, config):
        rle, _ = rle_kernel(bundle.quant, config)
        out, _ = rle_decode_kernel(rle, out_dtype=np.uint16)
        np.testing.assert_array_equal(out, bundle.quant.reshape(-1))

    def test_rle_throughput_in_paper_band(self, bundle, config):
        rle, prof = rle_kernel(bundle.quant, config, n_sim=5 * 10**8)
        v = CostModel(V100).time(prof).gbps
        a = CostModel(A100).time(prof).gbps
        assert 80 < v < 220
        assert 1.2 < a / v < 1.8  # "slightly higher on A100"


class TestCodebookKernel:
    def test_single_thread_build_much_slower(self, bundle, config):
        """Step-6's single-thread bottleneck vs the sort+MK replacement."""
        from repro.encoding.histogram import histogram
        from repro.kernels.codebook_kernel import codebook_kernel

        freqs = histogram(bundle.quant, config.dict_size)
        model = CostModel(V100)
        _, p_old = codebook_kernel(freqs, impl="cusz")
        _, p_new = codebook_kernel(freqs, impl="cuszplus")
        t_old = model.time(p_old).seconds
        t_new = model.time(p_new).seconds
        assert t_old > 5 * t_new

    def test_both_books_optimal(self, bundle, config):
        from repro.encoding.histogram import histogram
        from repro.kernels.codebook_kernel import codebook_kernel

        freqs = histogram(bundle.quant, config.dict_size)
        book_old, _ = codebook_kernel(freqs, impl="cusz")
        book_new, _ = codebook_kernel(freqs, impl="cuszplus")
        assert book_old.average_bit_length(freqs) == pytest.approx(
            book_new.average_bit_length(freqs), abs=1e-12
        )

    def test_negligible_vs_data_kernels(self, bundle, config):
        """Why Table VII omits the stage: alphabet << data."""
        from repro.encoding.histogram import histogram
        from repro.kernels.codebook_kernel import codebook_kernel

        freqs = histogram(bundle.quant, config.dict_size)
        model = CostModel(V100)
        _, p_book = codebook_kernel(freqs, impl="cuszplus", payload_elements=10**8)
        _, _, p_enc = huffman_encode_kernel(bundle.quant, config, n_sim=10**8)
        assert model.time(p_book).seconds < 0.05 * model.time(p_enc).seconds
