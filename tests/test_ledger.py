"""Tests for the run ledger: opt-in, record schema, rotation, aggregation,
fingerprint stability, and the <5 % overhead acceptance bound."""

import json
import os
import time

import numpy as np
import pytest

import repro
from repro.core.config import CompressorConfig
from repro.core.streaming import compress_blocks
from repro.telemetry import ledger as lm
from repro.telemetry.ledger import (
    LEDGER_SCHEMA,
    RECORD_REQUIRED_KEYS,
    RunLedger,
    aggregate_ledger,
    config_fingerprint,
    ledger_for,
    read_ledger,
    render_ledger_report,
    span_self_times,
)


@pytest.fixture(autouse=True)
def _isolate_ledgers(monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    lm.reset_ledgers()
    yield
    lm.reset_ledgers()


def make_field(seed=0, shape=(48, 64)):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).astype(np.float32).cumsum(axis=1)


class TestOptIn:
    def test_off_by_default(self, tmp_path):
        assert ledger_for(None) is None
        assert ledger_for(CompressorConfig()) is None
        repro.compress(make_field(), eb=1e-3)
        assert list(tmp_path.iterdir()) == []

    def test_config_opt_in_records_compress(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        result = repro.compress(
            make_field(), CompressorConfig(eb=1e-3, ledger=str(path))
        )
        lm.reset_ledgers()
        recs = read_ledger(path)
        assert [r["op"] for r in recs] == ["compress"]
        rec = recs[0]
        for key in RECORD_REQUIRED_KEYS:
            assert key in rec
        assert rec["schema"] == LEDGER_SCHEMA
        assert rec["pid"] == os.getpid()
        assert rec["shape"] == [48, 64]
        assert rec["dtype"] == "float32"
        assert rec["sizes"]["original_bytes"] == result.original_bytes
        assert rec["sizes"]["compressed_bytes"] == result.compressed_bytes
        assert rec["selector"]["decision"] == result.workflow
        assert rec["fingerprint"] == config_fingerprint(
            CompressorConfig(eb=1e-3)
        )

    def test_env_opt_in_records_decompress(self, tmp_path, monkeypatch):
        blob = repro.compress(make_field(), eb=1e-3).archive
        path = tmp_path / "ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(path))
        repro.decompress(blob)
        lm.reset_ledgers()
        recs = read_ledger(path)
        assert [r["op"] for r in recs] == ["decompress"]
        assert recs[0]["sizes"]["compressed_bytes"] == len(blob)
        assert recs[0]["sizes"]["ratio"] > 1.0

    def test_ledger_does_not_change_archive(self, tmp_path):
        field = make_field()
        plain = repro.compress(field, CompressorConfig(eb=1e-3)).archive
        logged = repro.compress(
            field, CompressorConfig(eb=1e-3, ledger=str(tmp_path / "l.jsonl"))
        ).archive
        assert plain == logged

    def test_config_rejects_non_path_ledger(self):
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError, match="ledger"):
            CompressorConfig(ledger=123)

    def test_stage_self_times_recorded(self, tmp_path):
        from repro import telemetry as tel

        path = tmp_path / "l.jsonl"
        with tel.scope(True):  # stages come from spans; force them on
            repro.compress(make_field(), CompressorConfig(eb=1e-3, ledger=str(path)))
        lm.reset_ledgers()
        (rec,) = read_ledger(path)
        assert "quantize" in rec["stages"]
        assert all(v >= 0.0 for v in rec["stages"].values())

    def test_records_even_when_telemetry_disabled(self, tmp_path):
        from repro import telemetry as tel

        path = tmp_path / "l.jsonl"
        with tel.scope(False):
            repro.compress(make_field(), CompressorConfig(eb=1e-3, ledger=str(path)))
        lm.reset_ledgers()
        (rec,) = read_ledger(path)
        assert rec["op"] == "compress"
        assert rec["stages"] == {}  # no spans, but the record still lands
        assert rec["sizes"]["compressed_bytes"] > 0


class TestEngineBatchRecords:
    def test_parallel_compress_blocks_records_engine(self, tmp_path):
        path = tmp_path / "l.jsonl"
        cfg = CompressorConfig(eb=1e-2, eb_mode="abs", ledger=str(path))
        field = make_field(3, shape=(64, 32))
        compress_blocks(field, cfg, max_block_bytes=2048, jobs=2)
        lm.reset_ledgers()
        recs = read_ledger(path)
        batches = [r for r in recs if r["op"] == "engine_batch"]
        assert len(batches) == 1
        batch = batches[0]
        assert batch["jobs"] == 2
        assert batch["n_blocks"] > 1
        assert batch["engine"]["queue_depth_max"] >= 1
        assert batch["engine"]["worker_wall_seconds"] > 0.0
        assert batch["engine"]["worker_cpu_seconds"] >= 0.0
        # each block's compress() also wrote its own record
        assert sum(r["op"] == "compress" for r in recs) == batch["n_blocks"]

    def test_serial_compress_blocks_records_batch_without_engine(self, tmp_path):
        path = tmp_path / "l.jsonl"
        cfg = CompressorConfig(eb=1e-2, eb_mode="abs", ledger=str(path))
        compress_blocks(make_field(4), cfg, max_block_bytes=4096)
        lm.reset_ledgers()
        batch = [r for r in read_ledger(path) if r["op"] == "engine_batch"][0]
        assert batch["jobs"] == 1
        assert "engine" not in batch


class TestRotation:
    def test_rotation_shifts_generations(self, tmp_path):
        path = tmp_path / "l.jsonl"
        ledger = RunLedger(path, max_bytes=400, keep=2)
        for k in range(30):
            ledger.record("compress", k=k)
        ledger.close()
        assert path.exists()
        assert path.with_name("l.jsonl.1").exists()
        assert path.with_name("l.jsonl.2").exists()
        assert not path.with_name("l.jsonl.3").exists()
        # every surviving line is intact JSON
        recs = read_ledger(path)
        ks = [r["k"] for r in recs]
        assert ks == sorted(ks)  # oldest-first across generations
        assert ks[-1] == 29

    def test_live_only_read_skips_rotated(self, tmp_path):
        path = tmp_path / "l.jsonl"
        ledger = RunLedger(path, max_bytes=400, keep=2)
        for k in range(30):
            ledger.record("compress", k=k)
        ledger.close()
        live = read_ledger(path, include_rotated=False)
        everything = read_ledger(path)
        assert 0 < len(live) < len(everything)

    def test_invalid_rotation_params_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RunLedger(tmp_path / "l.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            RunLedger(tmp_path / "l.jsonl", keep=0)

    def test_torn_and_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "l.jsonl"
        ledger = RunLedger(path)
        ledger.record("compress", k=1)
        ledger.close()
        with open(path, "a") as fh:
            fh.write('{"not": "a ledger record"}\n')
            fh.write("garbage not json\n")
            fh.write('{"schema": "repro.ledger/v1", "ts": 1, "op": "x"')  # torn
        recs = read_ledger(path)
        assert len(recs) == 1 and recs[0]["k"] == 1


class TestFingerprint:
    def test_stable_across_observability_knobs(self):
        base = CompressorConfig(eb=1e-3)
        assert config_fingerprint(base) == config_fingerprint(
            base.with_(ledger="/tmp/x.jsonl", telemetry=False)
        )

    def test_changes_with_codec_fields(self):
        base = CompressorConfig(eb=1e-3)
        assert config_fingerprint(base) != config_fingerprint(base.with_(eb=1e-4))
        assert config_fingerprint(base) != config_fingerprint(
            base.with_(workflow="rle")
        )


class TestSpanSelfTimes:
    def test_null_span_yields_empty(self):
        assert span_self_times(None) == {}
        assert span_self_times("nope") == {}

    def test_self_excludes_children_and_aggregates_by_name(self):
        from repro import telemetry as tel

        with tel.scope(True):
            with tel.span("outer") as outer:
                with tel.span("inner"):
                    time.sleep(0.002)
                with tel.span("inner"):
                    time.sleep(0.002)
        times = span_self_times(outer)
        assert set(times) == {"outer", "inner"}
        assert times["inner"] >= 0.004 * 0.5  # two sleeps, coarse clocks
        assert times["outer"] < outer.duration  # children subtracted


class TestAggregation:
    def test_aggregate_and_render(self, tmp_path):
        from repro import telemetry as tel

        path = tmp_path / "l.jsonl"
        cfg = CompressorConfig(eb=1e-2, eb_mode="abs", ledger=str(path))
        with tel.scope(True):
            repro.compress(make_field(0), cfg)
            repro.compress(make_field(1), cfg)
            compress_blocks(make_field(2, shape=(64, 32)), cfg,
                            max_block_bytes=2048, jobs=2)
        lm.reset_ledgers()
        recs = read_ledger(path)
        report = aggregate_ledger(recs)
        assert report["schema"] == LEDGER_SCHEMA
        assert report["n_records"] == len(recs)
        assert report["ops"]["compress"] >= 2
        assert report["ops"]["engine_batch"] == 1
        assert report["engine"]["jobs_seen"] == [2]
        assert report["engine"]["queue_depth_max"] >= 1
        assert report["bytes"]["original"] > report["bytes"]["compressed"]
        assert "quantize" in report["stages"]["compress"]
        text = render_ledger_report(report)
        assert "ledger report" in text
        assert "engine_batch" in text
        assert "quantize" in text

    def test_aggregate_empty(self):
        report = aggregate_ledger([])
        assert report["n_records"] == 0
        assert report["ops"] == {}
        assert "(none)" in render_ledger_report(report)

    def test_records_json_roundtrip(self, tmp_path):
        path = tmp_path / "l.jsonl"
        repro.compress(make_field(), CompressorConfig(eb=1e-3, ledger=str(path)))
        lm.reset_ledgers()
        for line in path.read_text().splitlines():
            json.loads(line)  # every line independently parseable


class TestSharedWriter:
    def test_ledger_for_caches_by_path(self, tmp_path):
        cfg = CompressorConfig(ledger=str(tmp_path / "l.jsonl"))
        a = ledger_for(cfg)
        b = ledger_for(cfg)
        assert a is b

    def test_ledger_for_recreates_after_close(self, tmp_path):
        cfg = CompressorConfig(ledger=str(tmp_path / "l.jsonl"))
        a = ledger_for(cfg)
        a.close()
        b = ledger_for(cfg)
        assert b is not a
        b.record("compress")
        assert read_ledger(tmp_path / "l.jsonl")


class TestOverheadBudget:
    def test_ledger_overhead_under_five_percent(self, tmp_path):
        """Acceptance bound: ledger writes add <5 % to compress wall time.

        Best-of-k over *interleaved* batches (plain, ledger, plain, ...)
        so CPU-frequency drift hits both sides equally; best-of-k strips
        scheduler outliers, and the workload is large enough that one
        JSONL append is deep in the noise.
        """
        fields = [make_field(s, shape=(256, 256)) for s in range(3)]
        plain_cfg = CompressorConfig(eb=1e-3)
        ledger_cfg = plain_cfg.with_(ledger=str(tmp_path / "l.jsonl"))

        def run(cfg):
            t0 = time.perf_counter()
            for f in fields:
                repro.compress(f, cfg)
            return time.perf_counter() - t0

        run(plain_cfg), run(ledger_cfg)  # warm caches and the writer
        bases, ledgers = [], []
        for _ in range(6):
            bases.append(run(plain_cfg))
            ledgers.append(run(ledger_cfg))
        base, with_ledger = min(bases), min(ledgers)
        lm.reset_ledgers()
        assert with_ledger <= base * 1.05, (
            f"ledger overhead {with_ledger / base - 1:.1%} exceeds 5% "
            f"({with_ledger * 1e3:.1f} ms vs {base * 1e3:.1f} ms)"
        )
