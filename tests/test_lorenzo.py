"""Tests for Lorenzo construction/reconstruction and the partial-sum theorem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.errors import DimensionalityError
from repro.core.lorenzo import (
    chunked_cumsum,
    chunked_diff,
    lorenzo_construct,
    lorenzo_predict_sequential,
    lorenzo_reconstruct,
    lorenzo_reconstruct_sequential,
)


class TestChunkedDiffCumsum:
    def test_diff_no_chunking_matches_numpy(self):
        x = np.arange(10, dtype=np.int64) ** 2
        out = chunked_diff(x, axis=0, chunk=100)
        expected = np.diff(x, prepend=0)
        np.testing.assert_array_equal(out, expected)

    def test_cumsum_no_chunking_matches_numpy(self):
        x = np.arange(10, dtype=np.int64)
        np.testing.assert_array_equal(chunked_cumsum(x, 0, 100), np.cumsum(x))

    def test_diff_restarts_at_chunk_boundary(self):
        x = np.array([5, 6, 7, 8], dtype=np.int64)
        out = chunked_diff(x, axis=0, chunk=2)
        # positions 0 and 2 are chunk starts: keep raw value
        np.testing.assert_array_equal(out, [5, 1, 7, 1])

    def test_cumsum_restarts_at_chunk_boundary(self):
        x = np.array([5, 1, 7, 1], dtype=np.int64)
        out = chunked_cumsum(x, axis=0, chunk=2)
        np.testing.assert_array_equal(out, [5, 6, 7, 8])

    def test_cumsum_inverts_diff_uneven_tail(self):
        x = np.arange(17, dtype=np.int64) * 3 - 20
        d = chunked_diff(x, 0, 5)
        np.testing.assert_array_equal(chunked_cumsum(d, 0, 5), x)

    def test_2d_axis_independence(self):
        rng = np.random.default_rng(0)
        x = rng.integers(-50, 50, (13, 9)).astype(np.int64)
        d = chunked_diff(x, axis=1, chunk=4)
        np.testing.assert_array_equal(chunked_cumsum(d, axis=1, chunk=4), x)

    def test_invalid_chunk_raises(self):
        with pytest.raises(ValueError):
            chunked_diff(np.zeros(4, dtype=np.int64), 0, 0)
        with pytest.raises(ValueError):
            chunked_cumsum(np.zeros(4, dtype=np.int64), 0, -1)

    @given(
        x=hnp.arrays(np.int64, st.integers(1, 60), elements=st.integers(-1000, 1000)),
        chunk=st.integers(1, 70),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property_1d(self, x, chunk):
        d = chunked_diff(x, 0, chunk)
        np.testing.assert_array_equal(chunked_cumsum(d, 0, chunk), x)


class TestLorenzoConstructReconstruct:
    @pytest.mark.parametrize(
        "shape,chunks",
        [
            ((64,), (16,)),
            ((64,), (64,)),
            ((17,), (5,)),
            ((12, 10), (4, 4)),
            ((16, 16), (16, 16)),
            ((9, 7, 5), (4, 4, 4)),
            ((8, 8, 8), (8, 8, 8)),
            ((3, 4, 5, 6), (2, 2, 2, 2)),
        ],
    )
    def test_roundtrip_exact(self, shape, chunks):
        rng = np.random.default_rng(42)
        x = rng.integers(-10_000, 10_000, shape).astype(np.int64)
        delta = lorenzo_construct(x, chunks)
        np.testing.assert_array_equal(lorenzo_reconstruct(delta, chunks), x)

    @pytest.mark.parametrize(
        "shape,chunks",
        [((20,), (8,)), ((7, 9), (4, 4)), ((5, 6, 4), (4, 4, 4))],
    )
    def test_construct_matches_sequential_reference(self, shape, chunks):
        """The vectorized N-pass diff equals the explicit Lorenzo formula."""
        rng = np.random.default_rng(7)
        x = rng.integers(-100, 100, shape).astype(np.int64)
        np.testing.assert_array_equal(
            lorenzo_construct(x, chunks), lorenzo_predict_sequential(x, chunks)
        )

    @pytest.mark.parametrize(
        "shape,chunks",
        [((20,), (8,)), ((7, 9), (4, 4)), ((5, 6, 4), (4, 4, 4))],
    )
    def test_partial_sum_theorem(self, shape, chunks):
        """Paper Section IV-B.2: partial-sum == sequential Lorenzo reconstruction."""
        rng = np.random.default_rng(9)
        delta = rng.integers(-5, 5, shape).astype(np.int64)
        np.testing.assert_array_equal(
            lorenzo_reconstruct(delta, chunks),
            lorenzo_reconstruct_sequential(delta, chunks),
        )

    def test_axis_order_commutes(self):
        """Integer addition commutativity lets passes run in any order."""
        rng = np.random.default_rng(3)
        delta = rng.integers(-9, 9, (6, 7, 8)).astype(np.int64)
        a = chunked_cumsum(chunked_cumsum(chunked_cumsum(delta, 0, 4), 1, 4), 2, 4)
        b = chunked_cumsum(chunked_cumsum(chunked_cumsum(delta, 2, 4), 0, 4), 1, 4)
        np.testing.assert_array_equal(a, b)

    def test_chunk_mismatch_raises(self):
        with pytest.raises(DimensionalityError):
            lorenzo_construct(np.zeros((4, 4), dtype=np.int64), (4,))
        with pytest.raises(DimensionalityError):
            lorenzo_reconstruct(np.zeros(4, dtype=np.int64), (2, 2))

    def test_unsupported_ndim_raises(self):
        with pytest.raises(DimensionalityError):
            lorenzo_construct(np.zeros((2,) * 5, dtype=np.int64), (2,) * 5)

    def test_first_element_is_raw_value(self):
        """Prediction from zeros: delta[0...] == x[0...]."""
        x = np.full((5, 5), 37, dtype=np.int64)
        delta = lorenzo_construct(x, (5, 5))
        assert delta[0, 0] == 37

    def test_constant_field_produces_sparse_deltas(self):
        """A constant field should be almost all zero after prediction."""
        x = np.full((32, 32), 11, dtype=np.int64)
        delta = lorenzo_construct(x, (16, 16))
        # Nonzeros only at chunk corners/edges (prediction-from-zero points).
        nonzero = np.count_nonzero(delta)
        assert nonzero <= 2 * 32 + 2 * 32  # boundary rows/cols of chunks

    @given(
        data=st.data(),
        shape=st.tuples(st.integers(1, 10), st.integers(1, 10)),
        chunks=st.tuples(st.integers(1, 12), st.integers(1, 12)),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property_2d(self, data, shape, chunks):
        x = data.draw(
            hnp.arrays(np.int64, shape, elements=st.integers(-10**6, 10**6))
        )
        delta = lorenzo_construct(x, chunks)
        np.testing.assert_array_equal(lorenzo_reconstruct(delta, chunks), x)
