"""Tests for the from-scratch LZ77/LZSS dictionary coder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import EncodingError
from repro.encoding.lz77 import (
    MIN_MATCH,
    lz_compress,
    lz_decompress,
    lz_expand,
    lz_parse,
)


class TestParseExpand:
    def test_empty(self):
        tokens = lz_parse(b"")
        assert tokens.n_tokens == 0
        assert lz_expand(tokens).size == 0

    def test_short_input_all_literals(self):
        tokens = lz_parse(b"ab")
        assert tokens.n_matches == 0
        assert bytes(lz_expand(tokens)) == b"ab"

    def test_repeated_text_finds_matches(self):
        data = b"the quick brown fox " * 50
        tokens = lz_parse(data)
        assert tokens.n_matches > 0
        assert tokens.n_tokens < len(data) / 4
        assert bytes(lz_expand(tokens)) == data

    def test_run_of_one_byte_overlapping_match(self):
        """aaaa... encodes via an offset-1 overlapping match (RLE-like)."""
        data = b"a" * 500
        tokens = lz_parse(data)
        assert tokens.n_matches >= 1
        assert int(tokens.offsets.min()) == 1
        assert bytes(lz_expand(tokens)) == data

    def test_incompressible_random(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, 4096).astype(np.uint8).tobytes()
        tokens = lz_parse(data)
        assert bytes(lz_expand(tokens)) == data

    def test_min_match_respected(self):
        tokens = lz_parse(b"abcXabcYabcZ" * 20)
        true_lengths = tokens.lengths.astype(int) + MIN_MATCH
        assert (true_lengths >= MIN_MATCH).all()

    def test_corrupt_offset_detected(self):
        tokens = lz_parse(b"abcdabcdabcd")
        if tokens.n_matches:
            tokens.offsets = tokens.offsets.copy()
            tokens.offsets[0] = 60000  # beyond the produced prefix
            with pytest.raises(EncodingError):
                lz_expand(tokens)


class TestContainer:
    @pytest.mark.parametrize("data", [
        b"",
        b"x",
        b"hello world, hello world, hello world",
        b"\x00" * 10_000,
        bytes(range(256)) * 16,
    ])
    def test_roundtrip(self, data):
        assert lz_decompress(lz_compress(data)) == data

    def test_roundtrip_random(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 8, 20_000).astype(np.uint8).tobytes()
        assert lz_decompress(lz_compress(data)) == data

    def test_compresses_quant_codes(self):
        """Smooth quant-code bytes (the qg path's input) shrink well."""
        from repro.core.config import CompressorConfig
        from repro.core.dual_quant import quantize_field
        from repro.data import get_dataset

        field = get_dataset("CESM").field("FSDSC")
        bundle, _ = quantize_field(field.data, CompressorConfig(eb=1e-2))
        raw = bundle.quant.tobytes()
        packed = lz_compress(raw)
        assert len(packed) < len(raw) / 10

    def test_comparable_to_zlib_regime(self):
        """Our from-scratch coder lands within ~4x of zlib on smooth data
        (zlib adds Huffman over offsets/lengths and lazy matching)."""
        import zlib

        data = (b"fieldvalue:0001 " * 400) + (b"fieldvalue:0002 " * 400)
        ours = len(lz_compress(data))
        theirs = len(zlib.compress(data, 6))
        assert ours < len(data) / 8
        assert ours < theirs * 4

    def test_truncated_container(self):
        with pytest.raises(EncodingError):
            lz_decompress(b"abc")

    @given(st.binary(min_size=0, max_size=3000))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        assert lz_decompress(lz_compress(data)) == data

    @given(st.lists(st.sampled_from([b"ab", b"cd", b"longer-motif-"]), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_motif_property(self, parts):
        data = b"".join(parts)
        assert lz_decompress(lz_compress(data)) == data
