"""Tests for quality metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    compression_ratio,
    evaluate_quality,
    max_abs_error,
    nrmse,
    psnr,
    verify_error_bound,
)


class TestMetrics:
    def test_identical_arrays(self):
        a = np.linspace(0, 1, 100)
        assert max_abs_error(a, a) == 0.0
        assert nrmse(a, a) == 0.0
        assert psnr(a, a) == float("inf")

    def test_max_error(self):
        a = np.array([0.0, 1.0, 2.0])
        b = np.array([0.1, 1.0, 1.7])
        assert max_abs_error(a, b) == pytest.approx(0.3)

    def test_nrmse_normalization(self):
        a = np.array([0.0, 10.0])
        b = np.array([1.0, 10.0])
        # rmse = sqrt(0.5); range = 10
        assert nrmse(a, b) == pytest.approx(np.sqrt(0.5) / 10)

    def test_psnr_formula(self):
        a = np.array([0.0, 100.0])
        b = a + 1.0
        # nrmse = 1/100 -> psnr = 40 dB
        assert psnr(a, b) == pytest.approx(40.0)

    def test_constant_field_nrmse(self):
        a = np.full(10, 5.0)
        assert nrmse(a, a) == 0.0
        assert nrmse(a, a + 1) == float("inf")

    def test_compression_ratio(self):
        assert compression_ratio(1000, 100) == 10.0
        with pytest.raises(ValueError):
            compression_ratio(100, 0)

    def test_verify_bound(self):
        a = np.zeros(5)
        b = np.full(5, 0.01)
        assert verify_error_bound(a, b, 0.01)
        assert not verify_error_bound(a, b, 0.005)

    def test_evaluate_quality_bundle(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=1000)
        b = a + rng.uniform(-1e-3, 1e-3, 1000)
        q = evaluate_quality(a, b, 1e-3)
        assert q.bound_satisfied
        assert q.max_error <= 1e-3 * (1 + 1e-6)
        assert q.psnr_db > 40
        assert q.eb_abs == 1e-3

    def test_paper_psnr_claim(self):
        """Table VII note: eb=1e-4 (relative) gives PSNR > 85 dB.

        Uniform quantization error at eb=1e-4 has an analytic PSNR floor of
        -20*log10(1e-4/sqrt(3)) = 84.77 dB; real fields sit above it.  Pure
        noise is the worst case, so assert the floor here (the dataset-level
        claim is checked in the Table VII benchmark).
        """
        rng = np.random.default_rng(1)
        a = rng.normal(size=100_000)
        import repro

        res = repro.compress(a.astype(np.float32), eb=1e-4)
        out = repro.decompress(res.archive)
        assert psnr(a.astype(np.float32), out) > 84.5
