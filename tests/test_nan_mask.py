"""Tests for transparent NaN-mask handling."""

import numpy as np
import pytest

import repro
from repro.core.errors import ConfigError


@pytest.fixture()
def masked_field():
    rng = np.random.default_rng(0)
    x = np.linspace(0, 8, 180)
    data = (np.sin(x)[:, None] * np.cos(x)[None, :] * 3 + rng.normal(0, 0.01, (180, 180))).astype(
        np.float32
    )
    mask = rng.random((180, 180)) < 0.03
    data[mask] = np.nan
    return data, mask


class TestNanMask:
    def test_roundtrip_restores_nans_exactly(self, masked_field):
        data, mask = masked_field
        res = repro.compress(data, eb=1e-3)
        out = repro.decompress(res.archive)
        np.testing.assert_array_equal(np.isnan(out), mask)
        finite = ~mask
        err = np.abs(data[finite].astype(np.float64) - out[finite].astype(np.float64))
        assert err.max() <= res.eb_abs

    def test_sparse_mask_stored_as_indices(self, masked_field):
        data, _ = masked_field
        res = repro.compress(data, eb=1e-3)
        # 3% density -> index list smaller than bitmask.
        assert res.section_sizes["nan"] < data.size // 8

    def test_dense_mask_stored_as_bitmask(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(100, 100)).astype(np.float32)
        data[rng.random((100, 100)) < 0.5] = np.nan
        res = repro.compress(data, eb=1e-2)
        assert res.section_sizes["nan"] <= data.size // 8 + 1
        out = repro.decompress(res.archive)
        np.testing.assert_array_equal(np.isnan(out), np.isnan(data))

    def test_land_sea_mask_pattern(self):
        """Contiguous masked regions (the climate land/sea case)."""
        rng = np.random.default_rng(2)
        data = rng.normal(size=(120, 200)).astype(np.float32)
        data[:, :80] = np.nan  # "land"
        res = repro.compress(data, eb=1e-3)
        out = repro.decompress(res.archive)
        assert np.isnan(out[:, :80]).all()
        assert not np.isnan(out[:, 80:]).any()

    def test_all_nan_rejected(self):
        with pytest.raises(ConfigError):
            repro.compress(np.full((10, 10), np.nan, dtype=np.float32), eb=1e-3)

    def test_inf_still_rejected(self):
        data = np.ones((10,), dtype=np.float32)
        data[3] = np.inf
        with pytest.raises(ConfigError):
            repro.compress(data, eb=1e-3)

    def test_mask_does_not_distort_bound_resolution(self):
        """The relative bound uses the finite range only."""
        data = np.linspace(0, 10, 1000).astype(np.float32)
        data[::100] = np.nan
        res = repro.compress(data, eb=1e-3)
        assert res.eb_abs == pytest.approx(1e-3 * 10.0, rel=0.01)

    def test_nan_with_rle_workflow(self):
        data = np.zeros((150, 150), dtype=np.float32)
        data[30:60] = 2.0
        data[100:110, 50:70] = np.nan
        res = repro.compress(data, eb=1e-2, workflow="rle+vle")
        out = repro.decompress(res.archive)
        np.testing.assert_array_equal(np.isnan(out), np.isnan(data))

    def test_nan_with_blocks(self):
        from repro.core.streaming import compress_blocks, decompress_blocks

        rng = np.random.default_rng(3)
        data = rng.normal(size=(200, 100)).astype(np.float32)
        data[40:50] = np.nan
        blob = compress_blocks(data, eb=1e-3, max_block_bytes=30_000)
        out = decompress_blocks(blob)
        np.testing.assert_array_equal(np.isnan(out), np.isnan(data))
