"""Tests for engine scaling diagnostics, the obs/trend CLI surface, the
bench-compare newer-schema exit code, and Chrome-trace export of
engine-parallel runs."""

import json
import time

import numpy as np
import pytest

import repro
from repro import telemetry as tel
from repro.cli import main
from repro.core.config import CompressorConfig
from repro.core.streaming import compress_blocks
from repro.engine import CompressionEngine
from repro.engine.diagnostics import (
    ScalingPoint,
    make_sweep_fields,
    run_scaling_sweep,
)
from repro.telemetry import ledger as lm


def make_field(seed=0, shape=(48, 64)):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).astype(np.float32).cumsum(axis=1)


class TestEngineAccounting:
    def test_worker_stats_and_snapshot(self):
        fields = [make_field(s) for s in range(6)]
        with CompressionEngine(CompressorConfig(eb=1e-3), jobs=2) as eng:
            eng.map(fields)
            snap = eng.diagnostics_snapshot()
        assert snap["jobs_completed"] == 6
        assert 1 <= snap["n_worker_threads"] <= 2
        assert snap["worker_wall_seconds"] > 0.0
        assert snap["worker_cpu_seconds"] >= 0.0
        assert snap["worker_wait_seconds"] >= 0.0
        assert snap["queue_depth_max"] >= 1
        assert snap["queue_depth"] == 0  # drained
        assert snap["submit_wait_seconds"] >= 0.0
        for worker in snap["workers"]:
            assert worker["jobs"] >= 1
            assert worker["wall_seconds"] >= worker["cpu_seconds"] * 0.0
        json.dumps(snap)  # ledger embeds this; must serialize

    def test_queue_depth_high_water_monotone(self):
        with CompressionEngine(jobs=1, max_inflight=4) as eng:
            futures = [eng.submit(make_field(s), eb=1e-2) for s in range(4)]
            [f.result() for f in futures]
            high = eng.queue_depth_max
            eng.submit(make_field(9), eb=1e-2).result()
            assert eng.queue_depth_max >= high >= 1

    def test_depth_timeline_records_transitions(self):
        with CompressionEngine(jobs=2) as eng:
            eng.map([make_field(s) for s in range(3)])
            timeline = eng.depth_timeline()
        assert len(timeline) == 6  # one +1 and one -1 per job
        times = [t for t, _ in timeline]
        assert times == sorted(times)
        assert timeline[-1][1] == 0

    def test_submit_wait_counts_backpressure(self):
        # max_inflight == jobs == 1 forces the producer to block on every
        # submit after the first.
        with CompressionEngine(jobs=1, max_inflight=1) as eng:
            futures = [eng.submit(make_field(s, shape=(96, 96)), eb=1e-3)
                       for s in range(4)]
            [f.result() for f in futures]
            assert eng.submit_wait_seconds > 0.0

    def test_queue_depth_max_gauge_exported(self):
        tel.reset_metrics()
        from repro.telemetry import instruments as ins

        with tel.scope(True), CompressionEngine(jobs=2) as eng:
            eng.map([make_field(s) for s in range(4)])
        exported = ins.ENGINE_QUEUE_DEPTH_MAX.value()
        assert exported >= 1
        text = tel.render_prometheus()
        assert "repro_engine_queue_depth_max" in text
        tel.reset_metrics()


class TestScalingSweep:
    def test_sweep_reports_breakdown(self):
        report = run_scaling_sweep(
            jobs_list=(1, 2), n_fields=3, shape=(48, 48), repeats=1
        )
        assert [p.jobs for p in report.points] == [1, 2]
        baseline = report.points[0]
        assert baseline.speedup == 1.0 and baseline.efficiency == 1.0
        for point in report.points:
            assert point.wall_seconds > 0.0
            assert point.worker_cpu_seconds >= 0.0
            assert point.lock_wait_seconds >= 0.0
            blob = point.to_json()
            # the acceptance-required CPU-vs-wait breakdown, per job count
            assert "worker_cpu_seconds" in blob
            assert "lock_wait_seconds" in blob
            assert 0.0 <= blob["cpu_fraction"] <= 1.0 + 1e-9
        rendered = report.render()
        assert "speedup vs jobs" in rendered
        assert "lock-wait ms" in rendered
        assert "verdict:" in rendered
        json.dumps(report.to_json())

    def test_sweep_fields_are_distinct(self):
        fields = make_sweep_fields(4, (32, 32))
        fingerprints = {f.tobytes() for f in fields}
        assert len(fingerprints) == 4

    def test_empty_jobs_list_rejected(self):
        with pytest.raises(ValueError):
            run_scaling_sweep(jobs_list=())

    def test_verdict_classifies_gil_bound(self):
        report_points = [
            ScalingPoint(1, 1.0, 1.0, 0.9, 0.1, 0.0, 1, 1, 4, 1.0, 1.0),
            ScalingPoint(4, 0.9, 3.6, 1.0, 2.6, 0.0, 4, 4, 4, 1.11, 0.28),
        ]
        from repro.engine.diagnostics import ScalingReport

        report = ScalingReport(4, (32, 32), 4096, 1, report_points)
        verdict = report.verdict()
        assert "thread backend is GIL-bound" in verdict
        assert "backend='process'" in verdict

    def test_verdict_classifies_process_ipc_overhead(self):
        # Workers are busy briefly; most of the parent wall is dispatch +
        # shared-memory traffic -- the process backend's distinct failure
        # story, which must not be labeled GIL-bound.
        report_points = [
            ScalingPoint(1, 1.0, 0.4, 0.4, 0.0, 0.0, 1, 1, 4, 1.0, 1.0,
                         ipc_overhead_seconds=0.6, backend="process"),
            ScalingPoint(4, 0.9, 0.5, 0.5, 0.0, 0.0, 4, 4, 4, 1.11, 0.28,
                         ipc_overhead_seconds=0.775, backend="process"),
        ]
        from repro.engine.diagnostics import ScalingReport

        report = ScalingReport(4, (32, 32), 4096, 1, report_points, backend="process")
        verdict = report.verdict()
        assert "process backend pays IPC overhead" in verdict
        assert "GIL" not in verdict


class TestChromeTraceParallel:
    """Satellite: engine-parallel runs export distinct tids and counter
    events that survive the JSON round trip."""

    def _parallel_trace(self):
        with tel.scope(True), tel.trace("batch") as tr:
            compress_blocks(
                make_field(1, shape=(128, 32)),
                CompressorConfig(eb=1e-2, eb_mode="abs"),
                max_block_bytes=1024, jobs=2,
            )
        return tr

    def test_worker_spans_have_distinct_tids(self):
        payload = json.loads(json.dumps(tel.to_chrome_trace(self._parallel_trace())))
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        compress_tids = {e["tid"] for e in spans if e["name"] == "compress"}
        root_tid = next(e["tid"] for e in spans if e["name"] == "compress_blocks")
        # 16 tiny blocks over 2 workers: both worker threads virtually
        # certainly ran at least one block, and neither is the producer.
        assert len(compress_tids) >= 2
        assert root_tid not in compress_tids

    def test_counter_events_survive_roundtrip(self):
        payload = json.loads(json.dumps(tel.to_chrome_trace(self._parallel_trace())))
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert counters, "byte-moving spans must emit throughput counters"
        for event in counters:
            assert event["name"] == "throughput_gbps"
            assert isinstance(event["args"], dict) and event["args"]
        # the compress_blocks root moved bytes: a nonzero sample + a zero
        root_samples = [e for e in counters if "compress_blocks" in e["args"]]
        values = sorted(e["args"]["compress_blocks"] for e in root_samples)
        assert values[0] == 0 and values[-1] > 0


class TestObsCli:
    def test_serve_once_prints_exposition(self, capsys):
        assert main(["obs", "serve", "--once"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_compress_calls_total counter" in out
        assert out.endswith("\n")
        from repro.telemetry.exposition import lint_prometheus

        assert lint_prometheus(out) == []

    def test_report_renders_ledger(self, tmp_path, capsys):
        path = tmp_path / "l.jsonl"
        repro.compress(make_field(), CompressorConfig(eb=1e-3, ledger=str(path)))
        lm.reset_ledgers()
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ledger report (1 records" in out
        assert "compress=1" in out

    def test_report_json(self, tmp_path, capsys):
        path = tmp_path / "l.jsonl"
        repro.compress(make_field(), CompressorConfig(eb=1e-3, ledger=str(path)))
        lm.reset_ledgers()
        assert main(["obs", "report", str(path), "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["command"] == "obs report"
        assert blob["n_records"] == 1

    def test_report_env_fallback(self, tmp_path, capsys, monkeypatch):
        path = tmp_path / "l.jsonl"
        repro.compress(make_field(), CompressorConfig(eb=1e-3, ledger=str(path)))
        lm.reset_ledgers()
        monkeypatch.setenv("REPRO_LEDGER", str(path))
        assert main(["obs", "report"]) == 0

    def test_report_missing_ledger(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert main(["obs", "report"]) == 2
        assert main(["obs", "report", str(tmp_path / "absent.jsonl")]) == 2

    def test_scaling_emits_curve_and_breakdown(self, capsys):
        assert main(["obs", "scaling", "--jobs", "1,2", "--fields", "3",
                     "--shape", "48", "48", "--repeats", "1",
                     "--backends", "thread"]) == 0
        out = capsys.readouterr().out
        assert "speedup vs jobs" in out
        assert "cpu ms" in out and "lock-wait ms" in out and "ipc ms" in out
        assert "verdict:" in out
        assert "recommended backend:" in out

    def test_scaling_json_has_per_job_breakdown(self, capsys):
        assert main(["obs", "scaling", "--jobs", "1,2", "--fields", "3",
                     "--shape", "48", "48", "--repeats", "1",
                     "--backends", "thread", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        report = blob["backends"]["thread"]
        assert [p["jobs"] for p in report["points"]] == [1, 2]
        for point in report["points"]:
            assert "worker_cpu_seconds" in point
            assert "lock_wait_seconds" in point
            assert "ipc_overhead_seconds" in point
        assert blob["recommendation"] in ("serial", "thread", "process")

    def test_scaling_sweeps_process_backend(self, capsys):
        assert main(["obs", "scaling", "--jobs", "1,2", "--fields", "2",
                     "--shape", "32", "32", "--repeats", "1",
                     "--backends", "process", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        report = blob["backends"]["process"]
        assert report["workload"]["backend"] == "process"
        assert all(p["backend"] == "process" for p in report["points"])

    def test_scaling_rejects_bad_jobs(self, capsys):
        assert main(["obs", "scaling", "--jobs", "two"]) == 2
        assert main(["obs", "scaling", "--jobs", "0,2"]) == 2

    def test_scaling_rejects_bad_backends(self, capsys):
        assert main(["obs", "scaling", "--jobs", "1,2",
                     "--backends", "gpu"]) == 2


class TestBenchCompareSchema:
    """Satellite: a baseline written by a newer schema exits 3, not a
    traceback."""

    def _write(self, path, schema):
        record = {"schema": schema, "label": "x", "results": []}
        path.write_text(json.dumps(record))

    def test_newer_schema_exits_3(self, tmp_path, capsys):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self._write(old, "repro.bench/v2")
        self._write(new, "repro.bench/v2")
        assert main(["bench", "compare", str(old), str(new)]) == 3
        assert "newer than this tool" in capsys.readouterr().err

    def test_malformed_schema_exits_2(self, tmp_path, capsys):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self._write(old, "something/else")
        self._write(new, "something/else")
        assert main(["bench", "compare", str(old), str(new)]) == 2


class TestBenchTrend:
    def _record(self, label, created, ratio, ms):
        from repro.bench.record import SCHEMA

        return {
            "schema": SCHEMA, "label": label, "scenario": "smoke",
            "created_unix": created,
            "environment": {"python": "3", "cpu": "x"},
            "config": {},
            "results": [{
                "case": "demo", "dataset": "d", "field": "f", "eb": 1e-3,
                "workflow": "auto", "repeats": 1,
                "timing": {"compress_total": {
                    "mean": ms / 1e3, "min": ms / 1e3, "max": ms / 1e3,
                    "stdev": 0.0, "n": 1}},
                "quality": {"compression_ratio": ratio, "psnr_db": 80.0},
                "sizes": {}, "selector": {},
            }],
            "metrics": {},
        }

    def test_trend_orders_by_created_and_plots(self, tmp_path, capsys):
        t0 = time.time()
        (tmp_path / "BENCH_new.json").write_text(
            json.dumps(self._record("new", t0 + 100, 12.0, 5.0)))
        (tmp_path / "BENCH_old.json").write_text(
            json.dumps(self._record("old", t0, 10.0, 6.0)))
        assert main(["bench", "trend", str(tmp_path), "--metric", "ratio"]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert "+20.0%" in out  # 10 -> 12 oldest-to-newest
        assert "records: old, new" in out

    def test_trend_skips_future_schema_records(self, tmp_path, capsys):
        t0 = time.time()
        (tmp_path / "BENCH_a.json").write_text(
            json.dumps(self._record("a", t0, 10.0, 5.0)))
        future = self._record("b", t0 + 1, 11.0, 5.0)
        future["schema"] = "repro.bench/v9"
        (tmp_path / "BENCH_b.json").write_text(json.dumps(future))
        assert main(["bench", "trend", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "newer schema" in out
        assert "records: a" in out

    def test_trend_no_records_exits_2(self, tmp_path, capsys):
        assert main(["bench", "trend", str(tmp_path)]) == 2

    def test_trend_json(self, tmp_path, capsys):
        (tmp_path / "BENCH_a.json").write_text(
            json.dumps(self._record("a", time.time(), 10.0, 5.0)))
        assert main(["bench", "trend", str(tmp_path), "--json",
                     "--metric", "compress_ms"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["series"]["demo"]["y"] == [5.0]
