"""Tests for the SPMD cluster, decomposition, PFS model and checkpoints."""

import numpy as np
import pytest

from repro.core.config import CompressorConfig
from repro.core.errors import ConfigError
from repro.parallel import (
    MIRA_CLASS_PFS,
    LocalCluster,
    ParallelFileSystem,
    read_checkpoint,
    read_rank_slab,
    run_spmd,
    slab_bounds,
    slab_for_rank,
    write_checkpoint,
)
from repro.parallel.checkpoint import estimate_dump_cost
from repro.parallel.decomposition import (
    block_bounds,
    exchange_slab_halos,
    process_grid,
)


class TestCommunicator:
    def test_rank_and_size(self):
        out = run_spmd(4, lambda comm: (comm.rank, comm.size))
        assert out == [(0, 4), (1, 4), (2, 4), (3, 4)]

    def test_bcast(self):
        def fn(comm):
            return comm.bcast("payload" if comm.rank == 0 else None, root=0)

        assert run_spmd(3, fn) == ["payload"] * 3

    def test_gather(self):
        def fn(comm):
            return comm.gather(comm.rank * 10, root=0)

        out = run_spmd(3, fn)
        assert out[0] == [0, 10, 20]
        assert out[1] is None and out[2] is None

    def test_allgather(self):
        out = run_spmd(3, lambda comm: comm.allgather(comm.rank))
        assert out == [[0, 1, 2]] * 3

    def test_allreduce_sum_and_max(self):
        assert run_spmd(4, lambda c: c.allreduce(c.rank + 1)) == [10] * 4
        assert run_spmd(4, lambda c: c.allreduce(c.rank, op=max)) == [3] * 4

    def test_point_to_point_ring(self):
        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(comm.rank, dest=right, tag=7)
            return comm.recv(source=left, tag=7)

        assert run_spmd(4, fn) == [3, 0, 1, 2]

    def test_numpy_payloads(self):
        def fn(comm):
            return comm.allreduce(np.full(3, comm.rank, dtype=np.int64))

        out = run_spmd(3, fn)
        np.testing.assert_array_equal(out[0], [3, 3, 3])

    def test_rank_error_propagates(self):
        def fn(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            return comm.rank

        with pytest.raises(RuntimeError, match="rank 1"):
            run_spmd(2, fn)

    def test_invalid_cluster(self):
        with pytest.raises(ConfigError):
            LocalCluster(0)

    def test_invalid_peer(self):
        with pytest.raises(RuntimeError):
            run_spmd(2, lambda c: c.send(1, dest=5))


class TestDecomposition:
    def test_slab_bounds_cover_exactly(self):
        n, size = 103, 8
        covered = []
        for r in range(size):
            start, stop = slab_bounds(n, size, r)
            covered.extend(range(start, stop))
        assert covered == list(range(n))

    def test_slab_balance(self):
        sizes = [slab_bounds(103, 8, r) for r in range(8)]
        extents = [b - a for a, b in sizes]
        assert max(extents) - min(extents) <= 1

    def test_slab_for_rank_view(self):
        field = np.arange(40).reshape(10, 4)
        slab = slab_for_rank(field, 5, 2)
        np.testing.assert_array_equal(slab, field[4:6])

    def test_too_many_ranks(self):
        with pytest.raises(ConfigError):
            slab_bounds(3, 8, 0)

    def test_process_grid_product(self):
        for size in (1, 4, 6, 12, 16, 30):
            for ndim in (1, 2, 3):
                grid = process_grid(size, ndim)
                assert int(np.prod(grid)) == size
                assert len(grid) == ndim

    def test_block_bounds_tile(self):
        shape, grid = (10, 12), (2, 3)
        seen = np.zeros(shape, dtype=int)
        for cx in range(2):
            for cy in range(3):
                seen[block_bounds(shape, grid, (cx, cy))] += 1
        assert (seen == 1).all()

    def test_halo_exchange(self):
        field = np.arange(12, dtype=np.float32).reshape(6, 2)

        def fn(comm):
            local = slab_for_rank(field, comm.size, comm.rank).copy()
            lower, upper = exchange_slab_halos(comm, local)
            return lower, upper

        out = run_spmd(3, fn)
        assert out[0][0] is None
        np.testing.assert_array_equal(out[0][1], field[2])  # rank1's first row
        np.testing.assert_array_equal(out[1][0], field[1])  # rank0's last row
        np.testing.assert_array_equal(out[2][0], field[3])
        assert out[2][1] is None


class TestPfsModel:
    def test_aggregate_bound(self):
        pfs = ParallelFileSystem("t", aggregate_bw=100.0, per_node_bw=1000.0, latency=0.0)
        # 10 ranks x 100 B = 1000 B at 100 B/s aggregate -> 10 s
        assert pfs.write_time([100] * 10) == pytest.approx(10.0)

    def test_per_node_bound(self):
        pfs = ParallelFileSystem("t", aggregate_bw=1e9, per_node_bw=10.0, latency=0.0)
        assert pfs.write_time([100, 1]) == pytest.approx(10.0)

    def test_latency_floor(self):
        assert MIRA_CLASS_PFS.write_time([0]) == pytest.approx(MIRA_CLASS_PFS.latency)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            MIRA_CLASS_PFS.write_time([-1])

    def test_dump_cost_comparison(self):
        raw, packed = estimate_dump_cost(
            per_rank_raw_bytes=[10**9] * 16,
            per_rank_stored_bytes=[10**8] * 16,
            pfs=MIRA_CLASS_PFS,
            compress_gbps_per_rank=50.0,
        )
        assert packed.compression_ratio == pytest.approx(10.0)
        assert packed.total_seconds < raw.total_seconds
        assert packed.compress_seconds > 0


class TestCheckpoint:
    @pytest.fixture(scope="class")
    def field(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 12, 240)
        return (np.sin(x)[:, None] * np.cos(x)[None, :] * 4 + rng.normal(0, 0.01, (240, 240))).astype(
            np.float32
        )

    def test_collective_roundtrip(self, field):
        config = CompressorConfig(eb=1e-3)

        def fn(comm):
            slab = slab_for_rank(field, comm.size, comm.rank).copy()
            return write_checkpoint(comm, slab, config, global_rows=field.shape[0])

        blobs = run_spmd(4, fn)
        assert blobs[0] is not None and all(b is None for b in blobs[1:])
        restored = read_checkpoint(blobs[0])
        assert restored.shape == field.shape
        eb_abs = 1e-3 * float(field.max() - field.min())
        assert np.abs(field.astype(np.float64) - restored.astype(np.float64)).max() <= eb_abs

    def test_global_bound_across_disjoint_ranges(self):
        """Rank value ranges differ wildly; the bound must stay global."""
        field = np.concatenate(
            [np.zeros((30, 16), np.float32), np.full((30, 16), 1000.0, np.float32)]
        )
        config = CompressorConfig(eb=1e-4)

        def fn(comm):
            slab = slab_for_rank(field, comm.size, comm.rank).copy()
            return write_checkpoint(comm, slab, config)

        blob = run_spmd(2, fn)[0]
        restored = read_checkpoint(blob)
        assert np.abs(field - restored).max() <= 1e-4 * 1000.0

    def test_single_rank_restore(self, field):
        config = CompressorConfig(eb=1e-3)

        def fn(comm):
            slab = slab_for_rank(field, comm.size, comm.rank).copy()
            return write_checkpoint(comm, slab, config)

        blob = run_spmd(3, fn)[0]
        slab1 = read_rank_slab(blob, 1)
        start, stop = slab_bounds(field.shape[0], 3, 1)
        eb_abs = 1e-3 * float(field.max() - field.min())
        assert np.abs(field[start:stop] - slab1).max() <= eb_abs

    def test_bad_rank_rejected(self, field):
        config = CompressorConfig(eb=1e-3)
        blob = run_spmd(
            2, lambda c: write_checkpoint(c, slab_for_rank(field, 2, c.rank).copy(), config)
        )[0]
        with pytest.raises(ConfigError):
            read_rank_slab(blob, 5)
