"""Tests for the heap-free (Moffat-Katajainen) codebook construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import EncodingError
from repro.encoding.huffman import build_codebook
from repro.encoding.huffman_codec import decode, encode
from repro.encoding.parallel_huffman import build_codebook_parallel, mk_code_lengths_sorted


class TestMkLengths:
    def test_worked_example(self):
        lengths = mk_code_lengths_sorted(np.array([1, 1, 2, 3, 5]))
        np.testing.assert_array_equal(lengths, [4, 4, 3, 2, 1])

    def test_degenerate_sizes(self):
        np.testing.assert_array_equal(mk_code_lengths_sorted(np.array([7])), [1])
        np.testing.assert_array_equal(mk_code_lengths_sorted(np.array([3, 9])), [1, 1])

    def test_uniform_frequencies_balanced(self):
        lengths = mk_code_lengths_sorted(np.full(8, 10))
        np.testing.assert_array_equal(lengths, [3] * 8)

    def test_rejects_unsorted(self):
        with pytest.raises(EncodingError):
            mk_code_lengths_sorted(np.array([5, 1]))

    def test_rejects_nonpositive(self):
        with pytest.raises(EncodingError):
            mk_code_lengths_sorted(np.array([0, 1]))
        with pytest.raises(EncodingError):
            mk_code_lengths_sorted(np.zeros(0))

    @given(st.lists(st.integers(1, 10**6), min_size=2, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_optimal_and_kraft_complete(self, freq_list):
        """MK lengths cost exactly what heap-Huffman costs, with a complete
        Kraft sum -- i.e. they are optimal prefix-code lengths."""
        freqs = np.array(freq_list, dtype=np.int64)
        sf = np.sort(freqs)
        lengths = mk_code_lengths_sorted(sf)
        cost_mk = int((lengths * sf).sum())
        heap = build_codebook(freqs)
        cost_heap = int((heap.lengths.astype(np.int64) * freqs).sum())
        assert cost_mk == cost_heap
        assert abs(sum(2.0 ** -int(l) for l in lengths) - 1.0) < 1e-9
        assert np.all(lengths[1:] <= lengths[:-1])


class TestParallelCodebook:
    def test_interoperates_with_codec(self):
        rng = np.random.default_rng(0)
        syms = rng.integers(0, 128, 30_000).astype(np.uint16)
        freqs = np.bincount(syms, minlength=128)
        book = build_codebook_parallel(freqs)
        np.testing.assert_array_equal(decode(encode(syms, book, 2048), book), syms)

    def test_same_average_bitlength_as_heap(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            freqs = rng.integers(0, 5000, 256)
            freqs[freqs.argmax()] += 100_000  # skew
            if freqs.sum() == 0:
                continue
            a = build_codebook_parallel(freqs).average_bit_length(freqs)
            b = build_codebook(freqs).average_bit_length(freqs)
            assert a == pytest.approx(b, abs=1e-12)

    def test_zero_frequency_symbols_excluded(self):
        freqs = np.array([0, 10, 0, 5, 0])
        book = build_codebook_parallel(freqs)
        assert book.lengths[0] == 0 and book.lengths[2] == 0 and book.lengths[4] == 0
        assert book.lengths[1] > 0 and book.lengths[3] > 0

    def test_all_zero_rejected(self):
        with pytest.raises(EncodingError):
            build_codebook_parallel(np.zeros(16, dtype=np.int64))

    def test_heap_archive_decodable_with_parallel_lengths(self):
        """Archives never record which construction made the lengths --
        canonical materialization is the interoperability point."""
        from repro.encoding.huffman import CanonicalCodebook

        rng = np.random.default_rng(2)
        syms = rng.integers(0, 32, 5000).astype(np.uint16)
        freqs = np.bincount(syms, minlength=32)
        book_p = build_codebook_parallel(freqs)
        restored = CanonicalCodebook.deserialized(book_p.serialized())
        np.testing.assert_array_equal(decode(encode(syms, book_p, 512), restored), syms)
