"""Tests for the cub/thrust-style parallel primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.primitives import (
    block_exclusive_scan,
    block_inclusive_scan,
    dense_to_sparse,
    reduce_by_key,
    sparse_to_dense,
    warp_shuffle_up,
)


class TestBlockScan:
    def test_inclusive_matches_cumsum_single_block(self):
        x = np.arange(10, dtype=np.int64)
        np.testing.assert_array_equal(block_inclusive_scan(x, 100), np.cumsum(x))

    def test_inclusive_resets_per_block(self):
        x = np.ones(8, dtype=np.int64)
        np.testing.assert_array_equal(
            block_inclusive_scan(x, 4), [1, 2, 3, 4, 1, 2, 3, 4]
        )

    def test_exclusive_shifts(self):
        x = np.ones(8, dtype=np.int64)
        np.testing.assert_array_equal(
            block_exclusive_scan(x, 4), [0, 1, 2, 3, 0, 1, 2, 3]
        )

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            block_inclusive_scan(np.ones((2, 2)), 2)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=200), st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_exclusive_plus_self_is_inclusive(self, vals, block):
        x = np.array(vals, dtype=np.int64)
        np.testing.assert_array_equal(
            block_exclusive_scan(x, block) + x, block_inclusive_scan(x, block)
        )


class TestReduceByKey:
    def test_basic(self):
        keys = np.array([1, 1, 2, 2, 2, 1])
        vals = np.array([10, 20, 1, 2, 3, 5])
        k, s = reduce_by_key(keys, vals)
        np.testing.assert_array_equal(k, [1, 2, 1])
        np.testing.assert_array_equal(s, [30, 6, 5])

    def test_empty(self):
        k, s = reduce_by_key(np.array([]), np.array([]))
        assert k.size == 0 and s.size == 0

    def test_all_unique(self):
        keys = np.arange(5)
        vals = np.arange(5) * 2
        k, s = reduce_by_key(keys, vals)
        np.testing.assert_array_equal(k, keys)
        np.testing.assert_array_equal(s, vals)

    def test_mismatched_raises(self):
        with pytest.raises(ValueError):
            reduce_by_key(np.arange(3), np.arange(2))

    def test_rle_via_reduce_by_key(self):
        """RLE = reduce_by_key(keys, ones) -- the paper's implementation."""
        stream = np.array([7, 7, 3, 3, 3, 7])
        values, counts = reduce_by_key(stream, np.ones_like(stream))
        np.testing.assert_array_equal(values, [7, 3, 7])
        np.testing.assert_array_equal(counts, [2, 3, 1])


class TestSparseConversions:
    def test_roundtrip(self):
        dense = np.array([0, 5, 0, 0, -2, 0], dtype=np.int64)
        idx, vals = dense_to_sparse(dense)
        np.testing.assert_array_equal(idx, [1, 4])
        restored = sparse_to_dense(idx, vals, dense.size, dtype=np.int64)
        np.testing.assert_array_equal(restored, dense)

    def test_custom_fill(self):
        dense = np.array([9, 9, 1], dtype=np.int64)
        idx, vals = dense_to_sparse(dense, fill=9)
        np.testing.assert_array_equal(idx, [2])

    def test_out_of_range_index_raises(self):
        with pytest.raises(IndexError):
            sparse_to_dense(np.array([5]), np.array([1]), 3)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            sparse_to_dense(np.array([0, 1]), np.array([1]), 4)


class TestWarpShuffle:
    def test_shift_within_warp(self):
        x = np.arange(64, dtype=np.int64)
        out = warp_shuffle_up(x, 1)
        # lane 0 of each warp keeps its value, others read lane-1
        assert out[0] == 0 and out[32] == 32
        np.testing.assert_array_equal(out[1:32], x[0:31])
        np.testing.assert_array_equal(out[33:64], x[32:63])

    def test_delta_zero_identity(self):
        x = np.arange(40, dtype=np.int64)
        np.testing.assert_array_equal(warp_shuffle_up(x, 0), x)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            warp_shuffle_up(np.arange(4), 32)

    def test_prefix_sum_via_shuffles(self):
        """Kogge-Stone in-warp scan -- how the 2D kernel avoids shared memory."""
        rng = np.random.default_rng(0)
        x = rng.integers(0, 10, 32).astype(np.int64)
        acc = x.copy()
        delta = 1
        while delta < 32:
            shifted = warp_shuffle_up(acc, delta)
            lanes = np.arange(32)
            acc = np.where(lanes >= delta, acc + shifted, acc)
            delta *= 2
        np.testing.assert_array_equal(acc, np.cumsum(x))
