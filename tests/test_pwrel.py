"""Tests for point-wise relative error bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.errors import ConfigError
from repro.core.pwrel import decompress_pwrel_with_stats, is_pwrel_archive


def compress_pwrel(data, r, config=None):
    """Unified-API spelling of the old entry point (mode='pwrel')."""
    base = config or repro.CompressorConfig()
    return repro.compress(data, base.with_(eb=r, eb_mode="pwrel"))


def rel_errors(original: np.ndarray, restored: np.ndarray) -> np.ndarray:
    o = original.astype(np.float64)
    r = restored.astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        e = np.abs(r - o) / np.abs(o)
    e[o == 0] = np.where(r.reshape(-1)[o.reshape(-1) == 0] == 0, 0.0, np.inf)
    return e


class TestPwrelRoundtrip:
    @pytest.mark.parametrize("r", [1e-2, 1e-3, 1e-4])
    def test_bound_holds_wide_dynamic_range(self, r):
        """The signature pwrel use case: values spanning many decades."""
        rng = np.random.default_rng(0)
        data = (10.0 ** rng.uniform(-8, 8, (200, 200))).astype(np.float32)
        res = compress_pwrel(data, r)
        out = repro.decompress(res.archive)
        assert float(rel_errors(data, out).max()) <= r

    def test_signs_preserved(self):
        rng = np.random.default_rng(1)
        data = (rng.normal(0, 1, 5000) * 10 ** rng.uniform(-3, 3, 5000)).astype(np.float32)
        res = compress_pwrel(data, 1e-3)
        out = repro.decompress(res.archive)
        assert np.array_equal(np.sign(out), np.sign(data))

    def test_zeros_lossless(self):
        data = np.array([0.0, 1.0, 0.0, -2.0, 0.0], dtype=np.float32)
        res = compress_pwrel(data, 1e-2)
        out = repro.decompress(res.archive)
        assert out[0] == 0.0 and out[2] == 0.0 and out[4] == 0.0
        assert float(rel_errors(data, out).max()) <= 1e-2

    def test_all_zero_field(self):
        data = np.zeros((64,), dtype=np.float32)
        out = repro.decompress(compress_pwrel(data, 1e-3).archive)
        np.testing.assert_array_equal(out, data)

    def test_float64(self):
        rng = np.random.default_rng(2)
        data = 10.0 ** rng.uniform(-5, 5, (100,))
        res = compress_pwrel(data, 1e-4)
        out = repro.decompress(res.archive)
        assert out.dtype == np.float64
        assert float(rel_errors(data, out).max()) <= 1e-4

    def test_dispatch_is_transparent(self):
        data = np.linspace(1, 100, 256).astype(np.float32)
        blob = compress_pwrel(data, 1e-3).archive
        assert is_pwrel_archive(blob)
        assert not is_pwrel_archive(repro.compress(data, eb=1e-3).archive)
        np.testing.assert_array_equal(
            repro.decompress(blob), decompress_pwrel_with_stats(blob).data
        )

    def test_beats_abs_mode_on_wide_range(self):
        """On high-dynamic-range data, pwrel at r keeps small values
        meaningful where a range-relative bound destroys them."""
        rng = np.random.default_rng(3)
        data = (10.0 ** rng.uniform(-6, 6, (300, 300))).astype(np.float32)
        pw = repro.decompress(compress_pwrel(data, 1e-2).archive)
        ab = repro.decompress(repro.compress(data, eb=1e-2).archive)
        small = data < 1.0
        pw_err = float(rel_errors(data, pw)[small].max())
        ab_err = float(rel_errors(data, ab)[small].max())
        assert pw_err <= 1e-2
        # Range-bound quantization annihilates small values (rel err -> 1).
        assert ab_err >= 0.99

    def test_invalid_bounds(self):
        data = np.ones(16, dtype=np.float32)
        with pytest.raises(ConfigError):
            compress_pwrel(data, 1.5)
        with pytest.raises(ConfigError):
            compress_pwrel(data, 1e-9)

    def test_non_finite_rejected(self):
        with pytest.raises(ConfigError):
            compress_pwrel(np.array([1.0, np.inf], dtype=np.float32), 1e-2)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
            min_size=1, max_size=400,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_bound_property(self, vals):
        data = np.array(vals, dtype=np.float32)
        res = compress_pwrel(data, 1e-2)
        out = repro.decompress(res.archive)
        assert float(rel_errors(data, out).max()) <= 1e-2
