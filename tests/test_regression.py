"""Tests for the linear-regression block predictor (future-work extension)."""

import numpy as np
import pytest

import repro
from repro.core.config import CompressorConfig
from repro.core.errors import ConfigError
from repro.core.regression import (
    RegressionCoefficients,
    fit_predict_chunks,
    predict_from_coefficients,
)


def ramp_2d(shape=(64, 96), a=0.7, b=-0.3, c=5.0, noise=0.0, seed=0):
    xx, yy = np.meshgrid(np.arange(shape[0]), np.arange(shape[1]), indexing="ij")
    data = a * xx + b * yy + c
    if noise:
        data = data + np.random.default_rng(seed).normal(0, noise, shape)
    return np.rint(data).astype(np.int64)


class TestFitPredict:
    def test_exact_plane_perfectly_predicted(self):
        dq = ramp_2d(a=1.0, b=2.0, c=3.0)
        pred, coeffs = fit_predict_chunks(dq, (16, 16))
        residual = dq - pred
        assert np.abs(residual).max() <= 1  # coefficient rounding only

    def test_decompressor_recomputes_identically(self):
        rng = np.random.default_rng(1)
        dq = rng.integers(-500, 500, (48, 32)).astype(np.int64)
        pred, coeffs = fit_predict_chunks(dq, (16, 16))
        restored = RegressionCoefficients.deserialized(
            coeffs.serialized(), coeffs.grid, coeffs.chunks
        )
        pred2 = predict_from_coefficients(restored, dq.shape)
        np.testing.assert_array_equal(pred, pred2)

    @pytest.mark.parametrize("shape,chunks", [
        ((100,), (16,)),           # ragged 1D
        ((64,), (16,)),            # aligned 1D
        ((30, 50), (16, 16)),      # ragged 2D
        ((24, 24, 24), (8, 8, 8)), # aligned 3D
        ((10, 11, 12), (8, 8, 8)), # ragged 3D
    ])
    def test_roundtrip_determinism_all_shapes(self, shape, chunks):
        rng = np.random.default_rng(2)
        dq = rng.integers(-100, 100, shape).astype(np.int64)
        pred, coeffs = fit_predict_chunks(dq, chunks)
        pred2 = predict_from_coefficients(coeffs, shape)
        np.testing.assert_array_equal(pred, pred2)

    def test_aligned_batched_matches_ragged_loop(self):
        """The batched pinv path equals the per-chunk lstsq path."""
        rng = np.random.default_rng(3)
        dq = rng.integers(-50, 50, (32, 32)).astype(np.int64)
        pred_fast, _ = fit_predict_chunks(dq, (16, 16))
        # Force the loop path with a ragged-looking same computation: pad by
        # nothing but call through slices.
        pred_slow = np.empty_like(dq)
        from repro.core.regression import _iter_chunk_slices, _local_coords, \
            _quantize_coeffs, _dequantize_coeffs

        for slicer in _iter_chunk_slices(dq.shape, (16, 16)):
            block = dq[slicer].astype(np.float64)
            design = _local_coords(block.shape)
            coeffs, *_ = np.linalg.lstsq(design, block.reshape(-1), rcond=None)
            fixed = _quantize_coeffs(coeffs)
            pred_slow[slicer] = np.rint(design @ _dequantize_coeffs(fixed)).astype(
                np.int64
            ).reshape(block.shape)
        np.testing.assert_array_equal(pred_fast, pred_slow)

    def test_grid_mismatch_raises(self):
        dq = np.zeros((32, 32), dtype=np.int64)
        _, coeffs = fit_predict_chunks(dq, (16, 16))
        with pytest.raises(ConfigError):
            predict_from_coefficients(coeffs, (64, 64))

    def test_deserialize_validates_count(self):
        with pytest.raises(ConfigError):
            RegressionCoefficients.deserialized(b"\x00" * 24, (2, 2), (16, 16))


class TestEndToEnd:
    def test_bound_holds_with_regression(self):
        rng = np.random.default_rng(4)
        xx, yy = np.meshgrid(np.arange(80), np.arange(120), indexing="ij")
        data = (0.3 * xx - 0.1 * yy + rng.normal(0, 1.0, (80, 120))).astype(np.float32)
        res = repro.compress(data, eb=1e-3, predictor="regression")
        assert res.predictor == "regression"
        out = repro.decompress(res.archive)
        assert np.abs(data.astype(np.float64) - out.astype(np.float64)).max() <= res.eb_abs

    def test_regression_beats_lorenzo_on_noisy_gradient(self):
        rng = np.random.default_rng(5)
        xx, yy = np.meshgrid(np.arange(128), np.arange(128), indexing="ij")
        data = (xx * 0.9 + yy * 0.4 + rng.normal(0, 3.0, (128, 128))).astype(np.float32)
        cr = {
            p: repro.compress(data, eb=1e-3, predictor=p).compression_ratio
            for p in ("lorenzo", "regression")
        }
        assert cr["regression"] > cr["lorenzo"]

    def test_lorenzo_beats_regression_on_local_structure(self, field_2d):
        cr = {
            p: repro.compress(field_2d, eb=1e-3, predictor=p).compression_ratio
            for p in ("lorenzo", "regression")
        }
        assert cr["lorenzo"] > cr["regression"]

    def test_auto_matches_best(self, field_2d):
        best = max(
            repro.compress(field_2d, eb=1e-3, predictor=p).compression_ratio
            for p in ("lorenzo", "regression", "interp")
        )
        auto = repro.compress(field_2d, eb=1e-3, predictor="auto")
        # The selector estimates entropy cost, not the exact archive size,
        # so allow a small deviation from the literal best.
        assert auto.compression_ratio >= 0.93 * best

    def test_archive_records_predictor(self):
        rng = np.random.default_rng(6)
        data = rng.normal(size=(40, 40)).astype(np.float32)
        res = repro.compress(data, eb=1e-2, predictor="regression")
        assert "reg" in res.section_sizes
        out = repro.decompress(res.archive)
        assert out.shape == data.shape

    def test_regression_3d(self):
        rng = np.random.default_rng(7)
        g = np.meshgrid(*[np.arange(24)] * 3, indexing="ij")
        data = (g[0] * 0.5 + g[1] * 0.2 - g[2] * 0.3 + rng.normal(0, 0.5, (24, 24, 24))).astype(
            np.float32
        )
        res = repro.compress(data, eb=1e-3, predictor="regression")
        out = repro.decompress(res.archive)
        assert np.abs(data.astype(np.float64) - out.astype(np.float64)).max() <= res.eb_abs

    def test_invalid_predictor_rejected(self):
        with pytest.raises(ConfigError):
            CompressorConfig(predictor="spline")
