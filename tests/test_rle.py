"""Tests for run-length encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import EncodingError
from repro.encoding.rle import expected_rle_bits, rle_decode, rle_encode


class TestRleEncode:
    def test_textbook_example(self):
        # "aabcccccaa" from the paper -> (a,2)(b,1)(c,5)(a,2)
        stream = np.array([0, 0, 1, 2, 2, 2, 2, 2, 0, 0], dtype=np.uint16)
        enc = rle_encode(stream)
        np.testing.assert_array_equal(enc.values, [0, 1, 2, 0])
        np.testing.assert_array_equal(enc.lengths, [2, 1, 5, 2])

    def test_runs_are_maximal(self):
        enc = rle_encode(np.array([7, 7, 7, 7], dtype=np.uint16))
        assert enc.n_runs == 1

    def test_alternating_worst_case(self):
        stream = np.tile([0, 1], 50).astype(np.uint16)
        enc = rle_encode(stream)
        assert enc.n_runs == 100
        assert enc.mean_run_length == 1.0

    def test_single_element(self):
        enc = rle_encode(np.array([42], dtype=np.uint16))
        assert enc.n_runs == 1 and enc.n_symbols == 1

    def test_empty_raises(self):
        with pytest.raises(EncodingError):
            rle_encode(np.zeros(0, dtype=np.uint16))

    def test_overlong_run_splits(self):
        stream = np.zeros(300, dtype=np.uint16)
        enc = rle_encode(stream, length_dtype=np.uint8)
        assert enc.lengths.dtype == np.uint8
        assert int(enc.lengths.astype(np.int64).sum()) == 300
        np.testing.assert_array_equal(rle_decode(enc), stream)

    def test_overlong_run_split_boundary_exact_multiple(self):
        stream = np.zeros(510, dtype=np.uint16)  # exactly 2 * 255
        enc = rle_encode(stream, length_dtype=np.uint8)
        np.testing.assert_array_equal(enc.lengths, [255, 255])

    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 4, 5000).astype(np.uint16)
        enc = rle_encode(stream)
        np.testing.assert_array_equal(rle_decode(enc), stream)

    def test_decode_validates_total(self):
        enc = rle_encode(np.array([1, 1, 2], dtype=np.uint16))
        enc.n_symbols = 5  # corrupt
        with pytest.raises(EncodingError):
            rle_decode(enc)

    def test_decode_validates_shapes(self):
        enc = rle_encode(np.array([1, 2], dtype=np.uint16))
        enc.lengths = enc.lengths[:1]
        with pytest.raises(EncodingError):
            rle_decode(enc)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=500))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, vals):
        stream = np.array(vals, dtype=np.uint16)
        enc = rle_encode(stream)
        np.testing.assert_array_equal(rle_decode(enc), stream)
        # runs are maximal: adjacent run values differ
        assert not np.any(enc.values[1:] == enc.values[:-1]) or enc.lengths.max() == np.iinfo(np.uint16).max


class TestExpectedBits:
    def test_matches_actual_encoding(self):
        rng = np.random.default_rng(1)
        stream = np.repeat(rng.integers(0, 8, 100), rng.integers(1, 30, 100)).astype(np.uint16)
        expected = expected_rle_bits(stream, 16, 16)
        enc = rle_encode(stream)
        assert expected == enc.n_runs * 32

    def test_empty_stream(self):
        assert expected_rle_bits(np.zeros(0, dtype=np.uint16), 16, 16) == 0

    def test_overlong_run_counted_as_split(self):
        """Regression: a run longer than the length-field maximum must be
        costed as multiple runs, exactly as rle_encode splits it."""
        stream = np.full(70_000, 3, dtype=np.uint16)  # one run > 65535
        enc = rle_encode(stream, length_dtype=np.uint16)
        assert enc.n_runs == 2  # 65535 + 4465
        assert expected_rle_bits(stream, 16, 16) == enc.n_runs * 32

    def test_split_estimate_matches_encoder_mixed_stream(self):
        rng = np.random.default_rng(3)
        stream = np.repeat(
            rng.integers(0, 4, 12).astype(np.uint16),
            rng.integers(1, 200_000, 12),
        )
        enc = rle_encode(stream, length_dtype=np.uint16)
        assert expected_rle_bits(stream, 16, 16) == enc.n_runs * 32

    def test_wide_length_field_never_splits(self):
        stream = np.full(70_000, 3, dtype=np.uint16)
        assert expected_rle_bits(stream, 16, 64) == 1 * (16 + 64)
