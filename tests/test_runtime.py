"""Tests for the simulated pipeline runtime (compress/decompress runs)."""

import numpy as np
import pytest

from repro.core.config import CompressorConfig
from repro.gpu import get_device, run_compression, run_decompression


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(3)
    x = np.linspace(0, 12, 300)
    return (np.sin(x)[:, None] * np.sin(x)[None, :] * 4 + 0.01 * rng.normal(size=(300, 300))).astype(
        np.float32
    )


@pytest.fixture(scope="module")
def config():
    return CompressorConfig(eb=1e-3)


class TestCompressionPipeline:
    def test_huffman_pipeline_stages(self, field, config):
        _, rep = run_compression(field, config, get_device("V100"))
        names = [s.name.split("[")[0] for s in rep.stages]
        assert names == [
            "lorenzo_construct", "gather_outlier", "histogram", "huffman_encode",
        ]

    def test_rle_pipeline_stages(self, field, config):
        _, rep = run_compression(field, config, get_device("V100"), workflow="rle")
        names = [s.name.split("[")[0] for s in rep.stages]
        assert names == ["lorenzo_construct", "gather_outlier", "rle"]

    def test_rle_vle_pipeline_adds_stages(self, field, config):
        _, rep = run_compression(field, config, get_device("V100"), workflow="rle+vle")
        names = [s.name.split("[")[0] for s in rep.stages]
        assert "rle" in names and "huffman_encode" in names

    def test_cusz_rejects_rle(self, field, config):
        with pytest.raises(ValueError):
            run_compression(field, config, get_device("V100"), impl="cusz", workflow="rle")

    def test_overall_slower_than_any_stage(self, field, config):
        _, rep = run_compression(field, config, get_device("V100"))
        assert rep.overall_gbps <= min(s.gbps for s in rep.stages)

    def test_stage_lookup(self, field, config):
        _, rep = run_compression(field, config, get_device("V100"))
        assert rep.stage("huffman_encode").gbps > 0
        with pytest.raises(KeyError):
            rep.stage("nonexistent")


class TestDecompressionPipeline:
    @pytest.mark.parametrize("workflow", ["huffman", "rle", "rle+vle"])
    def test_roundtrip_within_bound(self, field, config, workflow):
        device = get_device("V100")
        art, _ = run_compression(field, config, device, workflow=workflow)
        out, rep = run_decompression(art, config, device)
        assert np.abs(field.astype(np.float64) - out.astype(np.float64)).max() <= art.eb_abs
        assert rep.overall_gbps > 0

    def test_cusz_uses_coarse_by_default(self, field, config):
        device = get_device("V100")
        art, _ = run_compression(field, config, device, impl="cusz")
        _, rep = run_decompression(art, config, device, impl="cusz")
        assert any("coarse" in s.name for s in rep.stages)

    def test_cuszplus_decompress_faster_than_cusz(self, field, config):
        device = get_device("V100")
        n_sim = 10**8
        art, _ = run_compression(field, config, device, n_sim=n_sim)
        _, rep_plus = run_decompression(art, config, device, impl="cuszplus", n_sim=n_sim)
        _, rep_base = run_decompression(art, config, device, impl="cusz", n_sim=n_sim)
        assert rep_plus.overall_gbps > rep_base.overall_gbps

    def test_a100_faster_overall(self, field, config):
        n_sim = 5 * 10**8
        reports = {}
        for dev in ("V100", "A100"):
            device = get_device(dev)
            art, crep = run_compression(field, config, device, n_sim=n_sim)
            _, drep = run_decompression(art, config, device, n_sim=n_sim)
            reports[dev] = (crep.overall_gbps, drep.overall_gbps)
        assert reports["A100"][0] > reports["V100"][0]
        assert reports["A100"][1] > reports["V100"][1]

    def test_1d_and_3d_pipelines(self, config):
        rng = np.random.default_rng(4)
        for shape in ((4096,), (24, 24, 24)):
            data = rng.normal(size=shape).astype(np.float32)
            device = get_device("V100")
            art, _ = run_compression(data, config, device)
            out, _ = run_decompression(art, config, device)
            assert np.abs(data - out).max() <= art.eb_abs
