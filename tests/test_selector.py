"""Tests for the compressibility-aware workflow selector."""

import numpy as np
import pytest

from repro.core.config import CompressorConfig
from repro.core.selector import estimate_rle_bits_per_symbol, select_workflow
from repro.encoding.histogram import histogram


def make_quant(p_zero: float, n: int = 100_000, alphabet: int = 1024, seed: int = 0):
    """Quant-code stream with a dominant symbol at the radius."""
    rng = np.random.default_rng(seed)
    radius = alphabet // 2
    q = np.full(n, radius, dtype=np.uint16)
    n_other = int(n * (1 - p_zero))
    pos = rng.choice(n, n_other, replace=False)
    q[pos] = radius + rng.integers(-20, 21, n_other)
    return q


class TestRleBitsEstimate:
    def test_constant_stream_tiny(self):
        q = np.full(10000, 512, dtype=np.uint16)
        est = estimate_rle_bits_per_symbol(q, 16, 16)
        assert est < 0.01

    def test_alternating_stream_huge(self):
        q = np.tile([1, 2], 5000).astype(np.uint16)
        est = estimate_rle_bits_per_symbol(q, 16, 16)
        assert est == pytest.approx(32.0, rel=0.01)

    def test_empty(self):
        assert estimate_rle_bits_per_symbol(np.zeros(0, np.uint16), 16, 16) == float("inf")


class TestSelection:
    def test_dominant_symbol_selects_rle(self):
        q = make_quant(0.995)
        diag = select_workflow(q, histogram(q, 1024), CompressorConfig())
        assert diag.decision == "rle+vle"
        assert diag.p1 > 0.99

    def test_flat_histogram_selects_huffman(self):
        rng = np.random.default_rng(1)
        q = rng.integers(400, 624, 100_000).astype(np.uint16)
        diag = select_workflow(q, histogram(q, 1024), CompressorConfig())
        assert diag.decision == "huffman"

    def test_threshold_rule_boundary(self):
        """Paper rule: estimated ⟨b⟩ <= 1.09 selects RLE."""
        q = make_quant(0.97)
        diag = select_workflow(q, histogram(q, 1024), CompressorConfig())
        if diag.bitlen_lower <= 1.09:
            assert diag.decision == "rle+vle"

    def test_forced_workflow_bypasses_rule(self):
        q = make_quant(0.999)
        cfg = CompressorConfig(workflow="huffman")
        diag = select_workflow(q, histogram(q, 1024), cfg)
        assert diag.decision == "huffman"
        assert diag.reason == "forced by configuration"

    def test_diagnostics_consistent(self):
        q = make_quant(0.9)
        diag = select_workflow(q, histogram(q, 1024), CompressorConfig())
        assert 0 < diag.p1 <= 1
        assert diag.entropy >= 0
        assert diag.bitlen_lower <= diag.bitlen_upper
        assert diag.rle_bitlen_estimate > 0
        assert diag.reason

    def test_custom_threshold(self):
        """A very high threshold makes everything pick RLE."""
        rng = np.random.default_rng(2)
        q = rng.integers(500, 524, 50_000).astype(np.uint16)
        cfg = CompressorConfig(rle_bitlen_threshold=100.0)
        diag = select_workflow(q, histogram(q, 1024), cfg)
        assert diag.decision == "rle+vle"

    def test_rle_wins_criterion(self):
        """Even above the 1.09 threshold, RLE is picked when its estimated
        bits-per-symbol beats Huffman's (the paper's primary criterion)."""
        # Long runs of a few distinct values: entropy ~2 bits but RLE tiny.
        q = np.repeat(np.arange(500, 516), 40_000).astype(np.uint16)
        diag = select_workflow(q, histogram(q, 1024), CompressorConfig())
        assert diag.rle_bitlen_estimate < diag.bitlen_lower
        assert diag.decision == "rle+vle"

    def test_forced_workflow_skips_estimation_passes(self):
        """Satellite: a forced workflow must short-circuit before the O(n)
        RLE/smoothness estimates; the diagnostics advertise the skip."""
        from repro import telemetry
        from repro.telemetry import instruments as ins

        q = make_quant(0.9)
        cfg = CompressorConfig(workflow="rle+vle")
        with telemetry.scope(True):
            before = ins.SELECTOR_FASTPATH.value(workflow="rle+vle")
            diag = select_workflow(q, histogram(q, 1024), cfg)
            assert ins.SELECTOR_FASTPATH.value(workflow="rle+vle") == before + 1
        assert diag.decision == "rle+vle"
        assert diag.reason == "forced by configuration"
        assert np.isnan(diag.rle_bitlen_estimate)  # estimate never computed
        assert diag.smoothness is None
        # the cheap histogram-derived diagnostics are still populated
        assert 0 < diag.p1 <= 1 and diag.bitlen_lower <= diag.bitlen_upper

    def test_fastpath_counter_silent_when_disabled(self):
        from repro import telemetry
        from repro.telemetry import instruments as ins

        q = make_quant(0.9)
        before = ins.SELECTOR_FASTPATH.value(workflow="huffman")
        with telemetry.scope(False):
            select_workflow(q, histogram(q, 1024), CompressorConfig(workflow="huffman"))
        assert ins.SELECTOR_FASTPATH.value(workflow="huffman") == before
