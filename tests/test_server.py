"""End-to-end lifecycle tests for the compression front door.

Every test drives a real :class:`repro.server.CompressionServer` listening
on an ephemeral port through real sockets -- the library pipeline is the
reference for byte-identity, and admission control / drain / fault paths
are exercised exactly as a client would hit them.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro import compress
from repro.core.errors import ConfigError
from repro.core.streaming import compress_blocks
from repro.server import (
    CompressionServer,
    QuotaExceeded,
    RequestScheduler,
    Saturated,
    ServerConfig,
    TokenBucket,
    parse_quota,
)

# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def request(port, method, path, body=b"", headers=None, timeout=60):
    """One HTTP request; returns (status, lowercase headers, body bytes)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        data = resp.read()
        return resp.status, {k.lower(): v for k, v in resp.getheaders()}, data
    finally:
        conn.close()


def err_payload(body: bytes) -> dict:
    return json.loads(body)["error"]


def make_field(shape=(48, 64), dtype=np.float32, seed=0):
    rng = np.random.default_rng(seed)
    n = int(np.prod(shape))
    wave = np.sin(np.linspace(0.0, 8.0 * np.pi, n))
    return (wave + np.cumsum(rng.standard_normal(n) * 0.01) + 5.0).astype(
        dtype
    ).reshape(shape)


@pytest.fixture(scope="module")
def server():
    config = ServerConfig(
        port=0, jobs=2, backend="thread", max_inflight=8, quota_rate=500.0
    )
    with CompressionServer(config) as srv:
        yield srv


# ---------------------------------------------------------------------------
# Round trips: every container kind must match the library pipeline exactly
# ---------------------------------------------------------------------------


class TestRoundTrips:
    def _roundtrip(self, server, field, query, reference_blob):
        status, headers, blob = request(
            server.port, "POST", "/v1/compress?" + query, body=field.tobytes()
        )
        assert status == 200, blob
        assert blob == reference_blob  # byte-identical to the library path
        status, headers, raw = request(server.port, "POST", "/v1/decompress", body=blob)
        assert status == 200, raw
        dims = tuple(int(d) for d in headers["x-repro-dims"].split(","))
        assert dims == field.shape
        restored = np.frombuffer(raw, dtype=field.dtype).reshape(dims)
        return restored

    def test_single_container_f32(self, server):
        field = make_field()
        reference = compress(field, eb=1e-3).archive
        restored = self._roundtrip(
            server, field, "dims=48,64&dtype=f32&eb=1e-3", reference
        )
        span = float(field.max() - field.min())
        assert np.abs(restored - field).max() <= 1e-3 * span * 1.0000001

    def test_single_container_f64(self, server):
        field = make_field(dtype=np.float64, seed=3)
        reference = compress(field, eb=1e-4).archive
        status, headers, blob = request(
            server.port, "POST",
            "/v1/compress?dims=48,64&dtype=f64&eb=1e-4",
            body=field.tobytes(),
        )
        assert status == 200 and blob == reference
        assert headers["x-repro-container"] == "single"
        status, headers, raw = request(server.port, "POST", "/v1/decompress", body=blob)
        assert status == 200 and headers["x-repro-dtype"] == "f64"
        assert raw == np.ascontiguousarray(
            np.frombuffer(raw, dtype=np.float64).reshape(48, 64)
        ).tobytes()

    def test_blocks_container(self, server):
        field = make_field(shape=(64, 64), seed=5)
        reference = compress_blocks(field, eb=1e-3, max_block_bytes=4096)
        restored = self._roundtrip(
            server, field,
            "dims=64,64&dtype=f32&eb=1e-3&block_bytes=4096",
            reference,
        )
        span = float(field.max() - field.min())
        assert np.abs(restored - field).max() <= 1e-3 * span * 1.0000001

    def test_pwrel_container(self, server):
        field = make_field(seed=7)  # strictly positive by construction
        reference = compress(field, eb=1e-3, mode="pwrel").archive
        status, headers, blob = request(
            server.port, "POST",
            "/v1/compress?dims=48,64&dtype=f32&eb=1e-3&mode=pwrel",
            body=field.tobytes(),
        )
        assert status == 200 and blob == reference
        assert headers["x-repro-container"] == "pwrel"
        status, _, raw = request(server.port, "POST", "/v1/decompress", body=blob)
        assert status == 200
        restored = np.frombuffer(raw, dtype=np.float32).reshape(48, 64)
        assert np.abs(restored - field).max() <= (1e-3 * np.abs(field)).max()

    def test_verify_reports_ok_and_corruption(self, server):
        blob = compress(make_field(), eb=1e-3).archive
        status, _, body = request(server.port, "POST", "/v1/verify", body=blob)
        assert status == 200
        report = json.loads(body)
        assert report["ok"] is True and report["sections_checked"] > 0
        # A corrupt archive is a *finding*, not a server error.
        status, _, body = request(
            server.port, "POST", "/v1/verify", body=blob[: len(blob) // 2]
        )
        assert status == 200
        report = json.loads(body)
        assert report["ok"] is False
        assert report["error"]["type"] in ("ArchiveError", "IntegrityError")


# ---------------------------------------------------------------------------
# Error mapping: malformed input must be a 4xx with a library hint, never 500
# ---------------------------------------------------------------------------


class TestErrorMapping:
    def test_garbage_archive_is_400_archive_error(self, server):
        status, _, body = request(
            server.port, "POST", "/v1/decompress", body=b"definitely not an archive"
        )
        assert status == 400
        err = err_payload(body)
        assert err["type"] == "ArchiveError"

    def test_truncated_archive_is_400_with_hint(self, server):
        blob = compress(make_field(), eb=1e-3).archive
        status, _, body = request(
            server.port, "POST", "/v1/decompress", body=blob[: len(blob) // 3]
        )
        assert status == 400
        err = err_payload(body)
        assert err["type"] in ("ArchiveError", "IntegrityError")
        assert err["detail"]  # a human-readable hint, not a traceback

    def test_body_size_mismatch_is_400_config_error(self, server):
        status, _, body = request(
            server.port, "POST", "/v1/compress?dims=48,64&dtype=f32",
            body=b"\x00" * 17,
        )
        assert status == 400
        err = err_payload(body)
        assert err["type"] == "ConfigError"
        assert "body size mismatch" in err["detail"]

    def test_missing_dims_is_400(self, server):
        status, _, body = request(
            server.port, "POST", "/v1/compress", body=b"\x00" * 8
        )
        assert status == 400
        assert "dims" in err_payload(body)["detail"]

    def test_empty_decompress_body_is_400(self, server):
        status, _, body = request(server.port, "POST", "/v1/decompress")
        assert status == 400
        assert err_payload(body)["type"] == "ArchiveError"

    def test_unknown_route_404_and_wrong_method_405(self, server):
        status, _, _ = request(server.port, "GET", "/v2/nope")
        assert status == 404
        status, _, _ = request(server.port, "GET", "/v1/compress")
        assert status == 405
        status, _, _ = request(server.port, "POST", "/healthz")
        assert status == 405

    def test_unknown_priority_is_400(self, server):
        status, _, body = request(
            server.port, "POST", "/v1/verify", body=b"x",
            headers={"X-Repro-Priority": "turbo"},
        )
        assert status == 400
        assert "priority" in err_payload(body)["detail"]

    def test_truncated_http_body_is_400_protocol_error(self, server):
        # Declare more bytes than we send, then close: the server must
        # answer 400 (the response races our FIN, so tolerate a reset too).
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(
                b"POST /v1/decompress HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: 1000\r\n\r\nshort"
            )
            sock.shutdown(socket.SHUT_WR)
            sock.settimeout(10)
            data = b""
            try:
                while chunk := sock.recv(65536):
                    data += chunk
            except (ConnectionResetError, TimeoutError):
                pass
        assert b"400" in data.split(b"\r\n", 1)[0]
        assert b"truncated" in data

    def test_chunked_transfer_is_501(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(
                b"POST /v1/compress HTTP/1.1\r\n"
                b"Host: x\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
            sock.settimeout(10)
            data = sock.recv(65536)
        assert b"501" in data.split(b"\r\n", 1)[0]

    def test_oversized_body_is_413(self):
        config = ServerConfig(
            port=0, jobs=1, backend="serial", max_inflight=2, max_body=1024
        )
        with CompressionServer(config) as srv:
            status, _, body = request(
                srv.port, "POST", "/v1/verify", body=b"\x00" * 2048
            )
            assert status == 413


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_quota_exhaustion_is_429_with_retry_after(self):
        config = ServerConfig(
            port=0, jobs=1, backend="serial", max_inflight=4,
            quota_rate=0.5, quota_burst=1.0,
        )
        field = make_field(shape=(16, 16))
        blob = compress(field, eb=1e-3).archive
        with CompressionServer(config) as srv:
            status, _, _ = request(
                srv.port, "POST", "/v1/verify", body=blob,
                headers={"X-Repro-Tenant": "greedy"},
            )
            assert status == 200
            status, headers, body = request(
                srv.port, "POST", "/v1/verify", body=blob,
                headers={"X-Repro-Tenant": "greedy"},
            )
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert err_payload(body)["type"] == "QuotaExceeded"
            # Another tenant draws from its own bucket and sails through.
            status, _, _ = request(
                srv.port, "POST", "/v1/verify", body=blob,
                headers={"X-Repro-Tenant": "patient"},
            )
            assert status == 200
            info = json.loads(request(srv.port, "GET", "/v1/info")[2])
            assert info["scheduler"]["rejected"].get("quota", 0) >= 1

    def test_capacity_exhaustion_is_429_saturated(self):
        config = ServerConfig(
            port=0, jobs=1, backend="thread", max_inflight=1, quota_rate=1000.0
        )
        big = make_field(shape=(1400, 1400), seed=11)
        with CompressionServer(config) as srv:
            results = {}

            def slow():
                results["slow"] = request(
                    srv.port, "POST",
                    "/v1/compress?dims=1400,1400&dtype=f32&eb=1e-3",
                    body=big.tobytes(), timeout=120,
                )

            worker = threading.Thread(target=slow)
            worker.start()
            try:
                deadline = time.time() + 30
                got_429 = None
                while time.time() < deadline and got_429 is None:
                    info = json.loads(request(srv.port, "GET", "/v1/info")[2])
                    if info["scheduler"]["inflight"] < 1:
                        time.sleep(0.005)
                        continue
                    status, headers, body = request(
                        srv.port, "POST", "/v1/verify", body=b"x" * 8
                    )
                    if status == 429:
                        got_429 = (headers, body)
                    elif results.get("slow"):
                        break  # the slow request already finished; re-race
            finally:
                worker.join(timeout=120)
            assert got_429 is not None, "never observed the saturated window"
            headers, body = got_429
            assert int(headers["retry-after"]) >= 1
            assert err_payload(body)["type"] == "Saturated"
            assert results["slow"][0] == 200  # in-flight work was unaffected


# ---------------------------------------------------------------------------
# Graceful drain
# ---------------------------------------------------------------------------


class TestDrain:
    def test_drain_finishes_inflight_and_rejects_new_work(self):
        config = ServerConfig(
            port=0, jobs=2, backend="thread", max_inflight=4, quota_rate=1000.0
        )
        big = make_field(shape=(1400, 1400), seed=13)
        srv = CompressionServer(config).start()
        try:
            results = {}

            def slow():
                results["slow"] = request(
                    srv.port, "POST",
                    "/v1/compress?dims=1400,1400&dtype=f32&eb=1e-3",
                    body=big.tobytes(), timeout=120,
                )

            worker = threading.Thread(target=slow)
            worker.start()
            deadline = time.time() + 30
            while time.time() < deadline:
                info = json.loads(request(srv.port, "GET", "/v1/info")[2])
                if info["scheduler"]["inflight"] >= 1:
                    break
                time.sleep(0.005)
            srv.begin_drain()
            # New job-endpoint work is refused while the listener stays up...
            status, _, body = request(srv.port, "POST", "/v1/verify", body=b"x")
            assert status == 503
            assert err_payload(body)["type"] == "ServerDraining"
            # ...liveness still answers 200 and says so...
            status, _, body = request(srv.port, "GET", "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "draining"
            # ...and the in-flight request completes untouched.
            worker.join(timeout=120)
            assert results["slow"][0] == 200
        finally:
            srv.stop(drain=True)
        # Fully stopped: the port no longer accepts connections.
        with pytest.raises(OSError):
            request(srv.port, "GET", "/healthz", timeout=2)


# ---------------------------------------------------------------------------
# Fault injection: a murdered process-backend worker must not take the
# server down
# ---------------------------------------------------------------------------


class TestFaultInjection:
    def test_killed_worker_fails_request_but_server_survives(self):
        config = ServerConfig(
            port=0, jobs=1, backend="process", max_inflight=2, quota_rate=1000.0
        )
        small = make_field(shape=(16, 16))
        big = make_field(shape=(1600, 1600), seed=17)
        with CompressionServer(config) as srv:
            # Warm up the pool so /v1/info reports the worker's pid.
            status, _, _ = request(
                srv.port, "POST", "/v1/compress?dims=16,16&dtype=f32&eb=1e-3",
                body=small.tobytes(), timeout=120,
            )
            assert status == 200
            # Worker accounting lands just after the result future resolves;
            # poll briefly instead of racing it.
            workers = []
            deadline = time.time() + 10
            while time.time() < deadline and not workers:
                info = json.loads(request(srv.port, "GET", "/v1/info")[2])
                workers = info["engine"]["workers"]
                if not workers:
                    time.sleep(0.01)
            assert workers, "process backend reported no workers"
            victim_pid = int(workers[0]["tid"])
            assert victim_pid != os.getpid()

            results = {}

            def doomed():
                results["doomed"] = request(
                    srv.port, "POST",
                    "/v1/compress?dims=1600,1600&dtype=f32&eb=1e-3",
                    body=big.tobytes(), timeout=120,
                )

            worker = threading.Thread(target=doomed)
            worker.start()
            deadline = time.time() + 30
            while time.time() < deadline:
                info = json.loads(request(srv.port, "GET", "/v1/info")[2])
                if info["engine"]["queue_depth"] >= 1:
                    break
                time.sleep(0.005)
            time.sleep(0.05)  # let the job reach the worker process
            os.kill(victim_pid, signal.SIGKILL)
            worker.join(timeout=120)

            status, _, body = results["doomed"]
            assert status == 500
            err = err_payload(body)
            assert err["type"] == "EngineError"
            assert "worker process died" in err["detail"]
            # The server is still alive and healthy...
            status, _, body = request(srv.port, "GET", "/healthz")
            assert status == 200 and json.loads(body)["status"] == "ok"
            # ...and subsequent requests succeed on a fresh engine.
            status, _, blob = request(
                srv.port, "POST", "/v1/compress?dims=16,16&dtype=f32&eb=1e-3",
                body=small.tobytes(), timeout=120,
            )
            assert status == 200
            assert blob == compress(small, eb=1e-3).archive


# ---------------------------------------------------------------------------
# Info and metrics endpoints
# ---------------------------------------------------------------------------


class TestIntrospection:
    def test_info_shape(self, server):
        status, _, body = request(server.port, "GET", "/v1/info")
        assert status == 200
        info = json.loads(body)
        assert set(info) >= {"server", "scheduler", "engine", "endpoints"}
        assert info["server"]["draining"] is False
        assert info["engine"]["backend"] == "thread"
        assert info["scheduler"]["limit"] == 8

    def test_metrics_exposes_server_families(self, server):
        # Serve at least one request so the families have samples.
        request(server.port, "GET", "/healthz")
        status, headers, body = request(server.port, "GET", "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        text = body.decode()
        assert "repro_server_requests_total" in text
        assert "repro_server_request_seconds" in text
        from repro.telemetry.exposition import lint_prometheus

        assert lint_prometheus(text) == []

    def test_metrics_json(self, server):
        status, _, body = request(server.port, "GET", "/metrics.json")
        assert status == 200
        assert "repro_server_requests_total" in json.loads(body)


# ---------------------------------------------------------------------------
# Scheduler unit tests (fake clock -- no sockets)
# ---------------------------------------------------------------------------


class TestScheduler:
    def test_token_bucket_refills_on_fake_clock(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_take() == 0.0
        assert bucket.try_take() == 0.0
        wait = bucket.try_take()
        assert wait == pytest.approx(0.5)
        now[0] += 0.5
        assert bucket.try_take() == 0.0

    def test_quota_rejection_carries_retry_after(self):
        now = [0.0]
        sched = RequestScheduler(
            limit=4, quota_rate=1.0, quota_burst=1.0, clock=lambda: now[0]
        )
        sched.admit("t", "interactive")
        sched.release()
        with pytest.raises(QuotaExceeded) as exc:
            sched.admit("t", "interactive")
        assert exc.value.retry_after >= 1
        assert sched.rejected["quota"] == 1

    def test_batch_reserve_protects_interactive_slots(self):
        sched = RequestScheduler(
            limit=4, batch_reserve=2, quota_rate=1000.0
        )
        sched.admit("t", "batch")
        sched.admit("t", "batch")
        with pytest.raises(Saturated):
            sched.admit("t", "batch")  # batch capped at limit - reserve = 2
        sched.admit("t", "interactive")
        sched.admit("t", "interactive")  # interactive sees the full limit
        with pytest.raises(Saturated):
            sched.admit("t", "interactive")
        assert sched.inflight_peak == 4

    def test_engine_spare_overrides_admission(self):
        sched = RequestScheduler(limit=8, quota_rate=1000.0)
        with pytest.raises(Saturated):
            sched.admit("t", "interactive", spare=0)
        sched.admit("t", "interactive", spare=3)

    def test_tenant_quota_overrides(self):
        sched = RequestScheduler(
            limit=4, quota_rate=1000.0,
            tenant_quotas={"slow": (1.0, 1.0)},
        )
        sched.admit("slow", "interactive")
        sched.release()
        with pytest.raises(QuotaExceeded):
            sched.admit("slow", "interactive")
        sched.admit("fast", "interactive")  # default bucket unaffected

    def test_parse_quota(self):
        assert parse_quota("100") == (100.0, 200.0)
        assert parse_quota("2:8") == (2.0, 8.0)
        with pytest.raises(ConfigError):
            parse_quota("zero")
        with pytest.raises(ConfigError):
            parse_quota("0")

    def test_invalid_scheduler_config_rejected(self):
        with pytest.raises(ConfigError):
            RequestScheduler(limit=0)
        with pytest.raises(ConfigError):
            RequestScheduler(limit=4, batch_reserve=4)
        with pytest.raises(ConfigError):
            RequestScheduler(limit=4).admit("t", "turbo")
