"""Soak/latency tests: replay the committed smoke traffic profile against
a live front door and hold it to the acceptance bar -- zero server errors,
byte-identical round trips, and a valid ``repro.bench`` record carrying
exact p50/p95/p99 latency quantiles."""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.bench.record import load_record, quantiles
from repro.core.errors import ConfigError
from repro.server import (
    CompressionServer,
    ServerConfig,
    load_profile,
    replay_profile,
    synthesize_field,
)
from repro.telemetry import ledger as ledger_mod

PROFILE = Path(__file__).parent / "profiles" / "smoke.jsonl"


@pytest.fixture(scope="module")
def soak_server(tmp_path_factory):
    """One server for the module, with the request ledger enabled."""
    ledger_path = tmp_path_factory.mktemp("soak") / "ledger.jsonl"
    previous = os.environ.get("REPRO_LEDGER")
    os.environ["REPRO_LEDGER"] = str(ledger_path)
    config = ServerConfig(
        port=0, jobs=4, backend="thread", max_inflight=16, quota_rate=1000.0
    )
    try:
        with CompressionServer(config) as srv:
            yield srv, ledger_path
    finally:
        if previous is None:
            os.environ.pop("REPRO_LEDGER", None)
        else:
            os.environ["REPRO_LEDGER"] = previous
        ledger_mod.reset_ledgers()


class TestSmokeProfile:
    def test_profile_meets_the_acceptance_shape(self):
        """The committed profile itself: >= 50 requests, >= 8 concurrent
        arrivals per burst, two tenants, mixed priorities and ops."""
        entries = load_profile(PROFILE)
        assert len(entries) >= 50
        bursts: dict[float, int] = {}
        for entry in entries:
            bursts[entry.offset] = bursts.get(entry.offset, 0) + 1
        assert max(bursts.values()) >= 8
        assert {e.tenant for e in entries} == {"cesm", "hacc"}
        assert {e.priority for e in entries} == {"interactive", "batch"}
        assert {e.op for e in entries} == {"compress", "decompress", "verify"}
        assert any(e.block_bytes for e in entries)  # blocks container too

    def test_soak_zero_errors_and_exact_digests(self, soak_server, tmp_path):
        srv, ledger_path = soak_server
        summary = replay_profile(
            PROFILE, host="127.0.0.1", port=srv.port,
            out_dir=tmp_path, label="soak",
        )
        assert summary["n_requests"] == 56
        assert summary["statuses"] == {"200": 56}, summary["errors"]
        assert summary["errors"] == []
        assert summary["digest_mismatches"] == 0
        assert summary["n_tenants"] == 2

        lat = summary["latency_seconds"]
        assert lat["n"] == 56
        assert 0.0 < lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]

        record = load_record(summary["record_path"])
        assert record["scenario"] == "replay"
        cases = {r["case"]: r for r in record["results"]}
        assert set(cases) == {
            "replay.compress", "replay.decompress", "replay.verify"
        }
        assert sum(r["repeats"] for r in record["results"]) == 56
        for result in record["results"]:
            q = result["latency_quantiles"]["request"]
            assert set(q) == {"p50", "p95", "p99"}
            assert 0.0 < q["p50"] <= q["p95"] <= q["p99"]
            assert result["quality"]["errors"] == 0
            assert result["timing"]["request"]["n"] == result["repeats"]

        # One ledger record per /v1/* request, tagged with tenant/priority.
        records = ledger_mod.read_ledger(ledger_path)
        server_records = [r for r in records if r["op"].startswith("server.")]
        assert len(server_records) >= 56
        assert {r["op"] for r in server_records} == {
            "server.compress", "server.decompress", "server.verify"
        }
        sample = server_records[0]
        assert {"tenant", "priority", "status", "seconds", "bytes_in",
                "bytes_out"} <= set(sample)

    @pytest.mark.slow
    def test_soak_repeated_rounds_stay_clean(self, soak_server, tmp_path):
        """Longer soak: several back-to-back rounds of the profile keep the
        same deterministic digests and never produce a server error."""
        srv, _ = soak_server
        for round_no in range(3):
            summary = replay_profile(
                PROFILE, host="127.0.0.1", port=srv.port,
                out_dir=tmp_path, label=f"soak_round{round_no}",
            )
            assert summary["statuses"] == {"200": 56}, summary["errors"]
            assert summary["digest_mismatches"] == 0


class TestReplayHarness:
    def test_synthesize_field_is_deterministic(self):
        a = synthesize_field((32, 40), "f32", seed=9)
        b = synthesize_field((32, 40), "f32", seed=9)
        assert a.tobytes() == b.tobytes()
        assert a.dtype == np.float32 and a.shape == (32, 40)
        assert synthesize_field((32, 40), "f32", seed=10).tobytes() != a.tobytes()

    def test_load_profile_rejects_malformed_lines(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"op": "explode", "dims": [4]}\n')
        with pytest.raises(ConfigError, match="op must be one of"):
            load_profile(bad)
        bad.write_text("not json\n")
        with pytest.raises(ConfigError, match="malformed JSON"):
            load_profile(bad)
        bad.write_text('{"op": "compress", "dims": []}\n')
        with pytest.raises(ConfigError, match="dims"):
            load_profile(bad)
        bad.write_text("# only comments\n\n")
        with pytest.raises(ConfigError, match="no requests"):
            load_profile(bad)

    def test_load_profile_applies_defaults(self, tmp_path):
        prof = tmp_path / "p.jsonl"
        prof.write_text(json.dumps({"op": "compress", "dims": [8, 8]}) + "\n")
        (entry,) = load_profile(prof)
        assert entry.tenant == "anonymous"
        assert entry.priority == "interactive"
        assert entry.dtype == "f32" and entry.eb == 1e-4
        assert entry.offset == 0.0 and entry.block_bytes == 0

    def test_replay_rejects_bad_speed(self, tmp_path):
        prof = tmp_path / "p.jsonl"
        prof.write_text(json.dumps({"op": "verify", "dims": [8]}) + "\n")
        with pytest.raises(ConfigError, match="speed"):
            replay_profile(prof, port=1, speed=0.0)


class TestQuantiles:
    def test_exact_order_statistics(self):
        samples = [float(i) for i in range(1, 101)]
        q = quantiles(samples)
        assert q == {"p50": 50.0, "p95": 95.0, "p99": 99.0}

    def test_small_and_empty_inputs(self):
        assert quantiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert quantiles([3.5]) == {"p50": 3.5, "p95": 3.5, "p99": 3.5}
        assert quantiles([2.0, 1.0], qs=(0.0, 1.0)) == {"p0": 1.0, "p100": 2.0}

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            quantiles([1.0], qs=(1.5,))
