"""Tests for block-wise / streaming compression."""

import numpy as np
import pytest

from repro.core.config import CompressorConfig
from repro.core.errors import ArchiveError, ConfigError
from repro.core.streaming import (
    StreamingCompressor,
    block_manifest,
    compress_blocks,
    decompress_block,
    decompress_blocks,
    decompress_range,
)


@pytest.fixture(scope="module")
def big_field():
    rng = np.random.default_rng(0)
    x = np.linspace(0, 20, 400)
    return (np.sin(x)[:, None] * np.cos(x)[None, :] * 8 + rng.normal(0, 0.01, (400, 400))).astype(
        np.float32
    )


class TestCompressBlocks:
    def test_roundtrip(self, big_field):
        blob = compress_blocks(big_field, eb=1e-3, max_block_bytes=100_000)
        out = decompress_blocks(blob)
        assert out.shape == big_field.shape
        eb_abs = 1e-3 * float(big_field.max() - big_field.min())
        assert np.abs(big_field.astype(np.float64) - out.astype(np.float64)).max() <= eb_abs

    def test_manifest_geometry(self, big_field):
        blob = compress_blocks(big_field, eb=1e-3, max_block_bytes=100_000)
        m = block_manifest(blob)
        assert m.shape == big_field.shape
        assert sum(m.extents) == 400
        assert m.n_blocks > 1
        # all but the last block share the computed extent
        assert len(set(m.extents[:-1])) <= 1

    def test_single_block_when_small(self, big_field):
        blob = compress_blocks(big_field, eb=1e-3, max_block_bytes=1 << 30)
        assert block_manifest(blob).n_blocks == 1

    def test_bound_is_global_not_per_block(self):
        """A block with a tiny local range must still use the global bound."""
        data = np.concatenate(
            [np.zeros((64, 32), np.float32), np.full((64, 32), 100.0, np.float32)]
        )
        blob = compress_blocks(data, eb=1e-3, max_block_bytes=8192)
        out = decompress_blocks(blob)
        assert np.abs(data - out).max() <= 1e-3 * 100.0

    def test_block_access(self, big_field):
        blob = compress_blocks(big_field, eb=1e-3, max_block_bytes=100_000)
        m = block_manifest(blob)
        b1 = decompress_block(blob, 1)
        off = m.offsets[1]
        eb_abs = 1e-3 * float(big_field.max() - big_field.min())
        assert np.abs(big_field[off : off + m.extents[1]] - b1).max() <= eb_abs

    def test_block_index_out_of_range(self, big_field):
        blob = compress_blocks(big_field, eb=1e-3, max_block_bytes=100_000)
        with pytest.raises(IndexError):
            decompress_block(blob, 99)

    def test_range_access(self, big_field):
        blob = compress_blocks(big_field, eb=1e-3, max_block_bytes=100_000)
        rows = decompress_range(blob, 37, 170)
        assert rows.shape == (133, 400)
        eb_abs = 1e-3 * float(big_field.max() - big_field.min())
        assert np.abs(big_field[37:170] - rows).max() <= eb_abs

    def test_range_validates(self, big_field):
        blob = compress_blocks(big_field, eb=1e-3, max_block_bytes=100_000)
        with pytest.raises(IndexError):
            decompress_range(blob, 100, 100)
        with pytest.raises(IndexError):
            decompress_range(blob, 0, 401)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            compress_blocks(np.zeros((0, 4), np.float32), eb=1e-3)

    def test_1d_and_3d(self):
        rng = np.random.default_rng(1)
        for shape in ((10_000,), (64, 24, 24)):
            data = rng.normal(size=shape).astype(np.float32)
            blob = compress_blocks(data, eb=1e-3, max_block_bytes=50_000)
            out = decompress_blocks(blob)
            eb_abs = 1e-3 * float(data.max() - data.min())
            assert np.abs(data - out).max() <= eb_abs

    def test_corrupt_manifest_detected(self, big_field):
        blob = compress_blocks(big_field, eb=1e-3, max_block_bytes=100_000)
        # chop the last bytes (manifest payload lives at the end)
        with pytest.raises(ArchiveError):
            decompress_blocks(blob[:-8])


class TestStreamingCompressor:
    def test_incremental_roundtrip(self):
        rng = np.random.default_rng(2)
        sc = StreamingCompressor(CompressorConfig(eb=0.01, eb_mode="abs"))
        blocks = [rng.normal(0, 1, (50, 64)).astype(np.float32) for _ in range(5)]
        for b in blocks:
            sc.append(b)
        assert sc.n_blocks == 5
        blob = sc.finish()
        out = decompress_blocks(blob)
        full = np.concatenate(blocks)
        assert out.shape == (250, 64)
        assert np.abs(full - out).max() <= 0.01

    def test_variable_block_heights(self):
        sc = StreamingCompressor(CompressorConfig(eb=0.01, eb_mode="abs"))
        sc.append(np.ones((10, 8), np.float32))
        sc.append(np.ones((3, 8), np.float32) * 2)
        blob = sc.finish()
        m = block_manifest(blob)
        assert m.extents == (10, 3)
        assert m.shape == (13, 8)

    def test_requires_abs_mode(self):
        with pytest.raises(ConfigError):
            StreamingCompressor(CompressorConfig(eb=1e-3, eb_mode="rel"))

    def test_rejects_mismatched_tail(self):
        sc = StreamingCompressor(CompressorConfig(eb=0.01, eb_mode="abs"))
        sc.append(np.ones((4, 8), np.float32))
        with pytest.raises(ConfigError):
            sc.append(np.ones((4, 9), np.float32))

    def test_append_after_finish_rejected(self):
        sc = StreamingCompressor(CompressorConfig(eb=0.01, eb_mode="abs"))
        sc.append(np.ones((4, 8), np.float32))
        sc.finish()
        with pytest.raises(ConfigError):
            sc.append(np.ones((4, 8), np.float32))

    def test_finish_without_blocks_rejected(self):
        sc = StreamingCompressor(CompressorConfig(eb=0.01, eb_mode="abs"))
        with pytest.raises(ConfigError):
            sc.finish()


class TestBlockEdgeCases:
    def test_single_block_full_access_paths(self, big_field):
        """All three read paths must agree when everything fits in one block."""
        blob = compress_blocks(big_field, eb=1e-3, max_block_bytes=1 << 30)
        assert block_manifest(blob).n_blocks == 1
        full = decompress_blocks(blob)
        np.testing.assert_array_equal(decompress_block(blob, 0), full)
        np.testing.assert_array_equal(decompress_range(blob, 3, 9), full[3:9])

    def test_range_spanning_exact_block_boundary(self, big_field):
        blob = compress_blocks(big_field, eb=1e-3, max_block_bytes=100_000)
        m = block_manifest(blob)
        assert m.n_blocks >= 2
        b = m.offsets[1]  # first row owned by block 1
        rows = decompress_range(blob, b - 1, b + 1)
        assert rows.shape[0] == 2
        eb_abs = 1e-3 * float(big_field.max() - big_field.min())
        assert np.abs(big_field[b - 1 : b + 1] - rows).max() <= eb_abs

    def test_streaming_heterogeneous_block_heights(self):
        rng = np.random.default_rng(5)
        sc = StreamingCompressor(CompressorConfig(eb=0.01, eb_mode="abs"))
        chunks = [rng.normal(size=(h, 24)).astype(np.float32) for h in (1, 7, 64, 3)]
        for c in chunks:
            sc.append(c)
        blob = sc.finish()
        m = block_manifest(blob)
        assert list(m.extents) == [1, 7, 64, 3]
        out = decompress_blocks(blob)
        data = np.concatenate(chunks)
        assert out.shape == data.shape
        assert np.abs(data - out).max() <= 0.01

    def test_constant_field_roundtrips_exactly_enough(self):
        """Satellite: zero value range must clamp to a tiny positive bound,
        not divide by zero or emit an unbounded quantization."""
        data = np.full((80, 32), 41.25, dtype=np.float32)
        blob = compress_blocks(data, eb=1e-3, max_block_bytes=4096)
        out = decompress_blocks(blob)
        assert out.shape == data.shape
        # with zero range the relative bound degrades to the raw eb value
        assert np.abs(data - out).max() <= 1e-3

    def test_all_nan_field_rejected(self):
        with pytest.raises(ConfigError, match="NaN"):
            compress_blocks(np.full((16, 16), np.nan, np.float32), eb=1e-3)

    def test_nonfinite_field_rejected(self):
        data = np.ones((16, 16), np.float32)
        data[3, 3] = np.inf
        with pytest.raises(ConfigError):
            compress_blocks(data, eb=1e-3)

    def test_partial_nan_field_still_compresses(self):
        rng = np.random.default_rng(9)
        data = rng.normal(size=(64, 32)).astype(np.float32)
        data[::7, ::5] = np.nan
        blob = compress_blocks(data, eb=1e-3, max_block_bytes=8192)
        out = decompress_blocks(blob)
        assert np.isnan(out[::7, ::5]).all()
        mask = ~np.isnan(data)
        eb_abs = 1e-3 * float(np.nanmax(data) - np.nanmin(data))
        assert np.abs(data[mask] - out[mask]).max() <= eb_abs
