"""Tests for the unified telemetry layer (tracing, metrics, export)."""

import json
import threading

import numpy as np
import pytest

import repro
from repro import telemetry
from repro.telemetry.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def force_telemetry_on():
    """Make telemetry deterministic regardless of REPRO_TELEMETRY in the
    environment (the suite must also pass under REPRO_TELEMETRY=0)."""
    telemetry.set_enabled(True)
    yield
    telemetry.set_enabled(None)


class TestSpans:
    def test_nesting_builds_tree(self):
        with telemetry.trace() as tr:
            with telemetry.span("root"):
                with telemetry.span("a"):
                    with telemetry.span("a1"):
                        pass
                with telemetry.span("b"):
                    pass
        assert len(tr.roots) == 1
        root = tr.roots[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["a1"]

    def test_duration_positive_and_nested_within_parent(self):
        with telemetry.trace() as tr:
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    sum(range(1000))
        outer = tr.roots[0]
        inner = outer.children[0]
        assert outer.duration > 0
        assert inner.duration > 0
        assert inner.duration <= outer.duration
        assert inner.t_start >= outer.t_start
        assert inner.t_end <= outer.t_end

    def test_set_updates_bytes_and_attrs(self):
        with telemetry.trace() as tr:
            with telemetry.span("s", bytes_in=10) as sp:
                sp.set(bytes_out=4, note="hi")
        s = tr.roots[0]
        assert s.bytes_in == 10
        assert s.bytes_out == 4
        assert s.attrs["note"] == "hi"

    def test_throughput_from_bytes(self):
        sp = telemetry.Span("x", bytes_in=1_000_000_000)
        sp.t_start, sp.t_end = 0.0, 0.5
        assert sp.throughput_gbps == pytest.approx(2.0)

    def test_exception_recorded_and_propagated(self):
        with telemetry.trace() as tr:
            with pytest.raises(ValueError):
                with telemetry.span("boom"):
                    raise ValueError("no")
        assert tr.roots[0].attrs["error"] == "ValueError"

    def test_walk_and_find(self):
        with telemetry.trace() as tr:
            with telemetry.span("r"):
                with telemetry.span("x"):
                    with telemetry.span("y"):
                        pass
        root = tr.roots[0]
        assert [s.name for s in root.walk()] == ["r", "x", "y"]
        assert root.find("y").name == "y"
        assert root.find("zzz") is None

    def test_spans_outside_trace_are_dropped(self):
        with telemetry.span("orphan"):
            pass  # no active trace: completes without error, goes nowhere
        with telemetry.trace() as tr:
            pass
        assert tr.roots == []

    def test_current_span_tracks_innermost(self):
        assert telemetry.current_span() is None
        with telemetry.span("a") as a:
            assert telemetry.current_span() is a
            with telemetry.span("b") as b:
                assert telemetry.current_span() is b
            assert telemetry.current_span() is a
        assert telemetry.current_span() is None


class TestTraceCollection:
    def test_multiple_roots(self):
        with telemetry.trace() as tr:
            with telemetry.span("first"):
                pass
            with telemetry.span("second"):
                pass
        assert [r.name for r in tr.roots] == ["first", "second"]
        assert tr.span_names() == {"first", "second"}

    def test_threads_get_independent_trees(self):
        """Worker threads (parallel ranks) each root their own tree in the
        shared trace, distinguished by thread id."""

        barrier = threading.Barrier(3)

        def work(tag):
            barrier.wait()  # keep all threads alive at once: distinct idents
            with telemetry.span(f"rank.{tag}"):
                with telemetry.span("stage"):
                    pass

        with telemetry.trace() as tr:
            threads = [threading.Thread(target=work, args=(i,)) for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert {r.name for r in tr.roots} == {"rank.0", "rank.1", "rank.2"}
        assert len({r.tid for r in tr.roots}) == 3
        for r in tr.roots:
            assert [c.name for c in r.children] == ["stage"]

    def test_tree_render(self):
        with telemetry.trace() as tr:
            with telemetry.span("pipeline", bytes_in=2048):
                with telemetry.span("stage_a"):
                    pass
        text = tr.tree()
        assert "pipeline" in text
        assert "stage_a" in text
        assert "ms" in text
        assert "2.0 KiB" in text


class TestEnableSwitch:
    def test_env_var_disables(self, monkeypatch):
        telemetry.set_enabled(None)  # fall through to the environment
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert not telemetry.enabled()
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert telemetry.enabled()

    def test_global_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        telemetry.set_enabled(True)
        assert telemetry.enabled()

    def test_scope_beats_global(self):
        telemetry.set_enabled(True)
        with telemetry.scope(False):
            assert not telemetry.enabled()
            with telemetry.scope(True):
                assert telemetry.enabled()
            assert not telemetry.enabled()
        assert telemetry.enabled()

    def test_scope_none_is_noop(self):
        with telemetry.scope(None):
            assert telemetry.enabled()

    def test_disabled_span_is_shared_noop(self):
        with telemetry.scope(False):
            s1 = telemetry.span("a", bytes_in=10)
            s2 = telemetry.span("b")
            assert s1 is s2  # shared singleton, no allocation
            assert not s1
            with s1 as s:
                s.set(bytes_out=5, anything="goes")
            assert s1.duration == 0.0
            assert s1.children == ()

    def test_disabled_spans_never_reach_trace(self):
        with telemetry.trace() as tr:
            with telemetry.scope(False):
                with telemetry.span("hidden"):
                    pass
        assert tr.roots == []


class TestMetrics:
    def test_counter_inc_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("test_total", "help text")
        c.inc()
        c.inc(2.5)
        c.inc(workflow="rle")
        assert c.value() == pytest.approx(3.5)
        assert c.value(workflow="rle") == 1.0
        assert c.total() == pytest.approx(4.5)

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c_total").inc(-1)

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set_value(7.0)
        g.set_value(3.0)
        assert g.value() == 3.0
        g.inc(2.0)
        assert g.value() == 5.0

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 5
        assert h.sum() == pytest.approx(56.05)
        assert h.bucket_counts() == {0.1: 1, 1.0: 3, 10.0: 4}

    def test_histogram_labelled_series_independent(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0,))
        h.observe(0.5, stage="quantize")
        h.observe(0.5, stage="encode")
        h.observe(0.5, stage="encode")
        assert h.count(stage="quantize") == 1
        assert h.count(stage="encode") == 2

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError):
            reg.gauge("m")

    def test_invalid_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name!")

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        c = reg.counter("runs_total", "Total runs")
        c.inc(3, workflow="huffman")
        h = reg.histogram("lat_seconds", "Latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        text = reg.render_prometheus()
        assert "# HELP runs_total Total runs" in text
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{workflow="huffman"} 3' in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.05" in text
        assert "lat_seconds_count 1" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(dataset='we"ird\\name')
        text = reg.render_prometheus()
        assert 'dataset="we\\"ird\\\\name"' in text

    def test_json_render_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "c help").inc(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5, k="v")
        snapshot = reg.render_json()
        payload = json.loads(json.dumps(snapshot))
        assert payload["c_total"]["type"] == "counter"
        assert payload["c_total"]["values"][0]["value"] == 2
        assert payload["h"]["values"][0]["labels"] == {"k": "v"}
        assert payload["h"]["values"][0]["count"] == 1

    def test_reset_zeroes_but_keeps_registration(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total")
        c.inc(5)
        reg.reset()
        assert c.value() == 0.0
        assert reg.get("c_total") is c

    def test_thread_safety_of_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total")

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 4000

    def test_thread_safety_under_churning_label_sets(self):
        """Concurrent writers each minting new label sets must not corrupt
        shared dicts, and concurrent renders must not crash mid-churn."""
        reg = MetricsRegistry()
        c = reg.counter("churn_total")
        h = reg.histogram("churn_seconds", buckets=(0.01, 0.1, 1.0))
        errors = []

        def churn(worker: int):
            try:
                for i in range(500):
                    c.inc(worker=str(worker), batch=str(i % 7))
                    h.observe(0.05 * (i % 3), worker=str(worker), batch=str(i % 7))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def render():
            try:
                for _ in range(50):
                    reg.render_prometheus()
                    reg.render_json()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(w,)) for w in range(4)]
        threads += [threading.Thread(target=render) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert c.total() == 4 * 500
        # every (worker, batch) series is intact
        total_observed = sum(
            entry["count"] for entry in h.to_json()["values"]
        )
        assert total_observed == 4 * 500

    def test_reset_isolates_consecutive_snapshots(self):
        """The bench runner's contract: reset between runs means a record's
        metrics snapshot reflects exactly that run."""
        reg = MetricsRegistry()
        c = reg.counter("runs_total")
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        c.inc(7, phase="warmup")
        h.observe(0.5, phase="warmup")
        reg.reset()
        c.inc(2, phase="measured")
        h.observe(0.05, phase="measured")
        snapshot = reg.render_json()
        assert snapshot["runs_total"]["values"] == [
            {"labels": {"phase": "measured"}, "value": 2.0}
        ]
        labels = [e["labels"] for e in snapshot["lat_seconds"]["values"]]
        assert labels == [{"phase": "measured"}]

    def test_reset_during_concurrent_observation_keeps_invariants(self):
        reg = MetricsRegistry()
        h = reg.histogram("r_seconds", buckets=(0.01, 1.0))
        stop = threading.Event()

        def observe():
            while not stop.is_set():
                h.observe(0.005, k="a")

        t = threading.Thread(target=observe)
        t.start()
        try:
            for _ in range(20):
                reg.reset()
        finally:
            stop.set()
            t.join()
        # after the dust settles, cumulative invariant holds for the series
        for entry in h.to_json()["values"]:
            assert entry["bucket_counts"] == sorted(entry["bucket_counts"])
            assert entry["bucket_counts"][-1] <= entry["count"]

    def test_histogram_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("q_seconds", buckets=(0.1, 0.2, 0.4, 0.8))
        for v in (0.05, 0.15, 0.15, 0.3, 0.3, 0.3, 0.5, 0.5, 0.6, 0.7):
            h.observe(v)
        p50 = h.quantile(0.5)
        assert 0.2 <= p50 <= 0.4
        p99 = h.quantile(0.99)
        assert 0.4 <= p99 <= 0.8
        assert h.quantile(0.0) <= p50 <= h.quantile(1.0)
        # empty series and out-of-range q
        assert h.quantile(0.5, missing="yes") is None
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantile_clamps_to_last_finite_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("big_seconds", buckets=(0.1, 1.0))
        h.observe(50.0)  # lands in the implicit +Inf bucket
        assert h.quantile(0.99) == 1.0

    def test_json_snapshot_carries_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("s_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        entry = reg.render_json()["s_seconds"]["values"][0]
        assert set(entry["quantiles"]) == {"p50", "p95", "p99"}
        assert all(v is not None for v in entry["quantiles"].values())


class TestChromeExport:
    def _capture(self):
        with telemetry.trace("unit") as tr:
            with telemetry.span("root", bytes_in=100) as sp:
                sp.set(bytes_out=10, workflow="huffman")
                with telemetry.span("child"):
                    pass
        return tr

    def test_schema_roundtrip(self, tmp_path):
        tr = self._capture()
        path = telemetry.write_chrome_trace(tmp_path / "t.json", tr)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"root", "child"}
        for e in spans:
            assert e["cat"] == "repro"
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
            assert e["ts"] >= 0
            assert e["dur"] >= 0

    def test_counter_events_track_throughput(self):
        payload = telemetry.to_chrome_trace(self._capture())
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        # "root" moved bytes, so it contributes a (value, zero) pair.
        root_samples = [e for e in counters if "root" in e["args"]]
        assert len(root_samples) == 2
        assert all(e["name"] == "throughput_gbps" for e in root_samples)
        first, last = sorted(root_samples, key=lambda e: e["ts"])
        assert first["args"]["root"] > 0
        assert last["args"]["root"] == 0
        # "child" moved no bytes: no counter track for it.
        assert not any("child" in e["args"] for e in counters)

    def test_child_interval_inside_parent(self):
        payload = telemetry.to_chrome_trace(self._capture())
        by_name = {e["name"]: e for e in payload["traceEvents"]
                   if e["ph"] == "X"}
        root, child = by_name["root"], by_name["child"]
        assert child["ts"] >= root["ts"]
        assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1e-3

    def test_args_carry_bytes_and_attrs(self):
        payload = telemetry.to_chrome_trace(self._capture())
        root = next(e for e in payload["traceEvents"] if e["name"] == "root")
        assert root["args"]["bytes_in"] == 100
        assert root["args"]["bytes_out"] == 10
        assert root["args"]["workflow"] == "huffman"


class TestPipelineIntegration:
    COMPRESS_STAGES = {
        "compress", "quantize", "histogram", "select_workflow",
        "encode", "outliers", "archive",
    }
    DECOMPRESS_STAGES = {
        "decompress", "archive_read", "decode", "scatter_outliers", "reconstruct",
    }

    def test_compress_trace_covers_every_stage(self, field_2d):
        with telemetry.trace() as tr:
            repro.compress(field_2d, eb=1e-3)
        assert self.COMPRESS_STAGES <= tr.span_names()

    def test_decompress_trace_covers_every_stage(self, field_2d):
        blob = repro.compress(field_2d, eb=1e-3).archive
        with telemetry.trace() as tr:
            repro.decompress(blob)
        assert self.DECOMPRESS_STAGES <= tr.span_names()

    def test_workflow_internals_traced(self, sparse_field_2d):
        with telemetry.trace() as tr:
            res = repro.compress(sparse_field_2d, eb=1e-2, workflow="rle+vle")
            repro.decompress(res.archive)
        names = tr.span_names()
        assert {"rle.encode", "rle.vle_values", "rle.vle_lengths", "rle.decode"} <= names

    def test_round_trip_increments_prometheus_counters(self, field_2d):
        ins = telemetry.REGISTRY
        c0 = ins.counter("repro_compress_calls_total").total()
        d0 = ins.counter("repro_decompress_calls_total").total()
        b0 = ins.counter("repro_compress_input_bytes_total").total()
        res = repro.compress(field_2d, eb=1e-3)
        repro.decompress(res.archive)
        assert ins.counter("repro_compress_calls_total").total() == c0 + 1
        assert ins.counter("repro_decompress_calls_total").total() == d0 + 1
        assert ins.counter("repro_compress_input_bytes_total").total() == b0 + field_2d.nbytes
        text = telemetry.render_prometheus()
        assert "repro_compress_calls_total" in text
        assert "repro_stage_seconds_bucket" in text
        assert ins.gauge("repro_last_compression_ratio").value() == pytest.approx(
            res.compression_ratio
        )

    def test_selector_decision_labelled(self, sparse_field_2d):
        sel = telemetry.REGISTRY.counter("repro_selector_decisions_total")
        before = sel.value(workflow="rle+vle")
        repro.compress(sparse_field_2d, eb=1e-2)  # auto -> rle+vle on this field
        assert sel.value(workflow="rle+vle") == before + 1

    def test_gpu_runtime_kernel_spans(self):
        from repro.gpu.device import V100
        from repro.gpu.runtime import run_compression, run_decompression
        from repro.core.config import CompressorConfig

        rng = np.random.default_rng(0)
        data = rng.normal(size=(64, 64)).astype(np.float32)
        with telemetry.trace() as tr:
            art, _ = run_compression(data, CompressorConfig(eb=1e-3), V100)
            run_decompression(art, CompressorConfig(eb=1e-3), V100)
        names = tr.span_names()
        assert {"gpu.run_compression", "kernel.lorenzo_construct",
                "kernel.gather_outlier", "kernel.huffman_encode"} <= names
        assert {"gpu.run_decompression", "kernel.huffman_decode",
                "kernel.scatter_outlier", "kernel.lorenzo_reconstruct"} <= names
        enc = next(s for s in tr.spans() if s.name == "kernel.huffman_encode")
        assert enc.attrs["simulated_seconds"] > 0
        assert enc.attrs["bound"] in ("compute", "memory", "serial", "overhead")

    def test_disabled_archive_identical_and_no_timing_keys(self, field_2d):
        with telemetry.scope(False):
            res_off = repro.compress(field_2d, eb=1e-3)
        res_on = repro.compress(field_2d, eb=1e-3)
        assert res_off.archive == res_on.archive
        assert not any(k.endswith("_seconds") for k in res_off.stage_stats)
        assert "total_seconds" in res_on.stage_stats
        # Workflow statistics survive disabled mode (they are not span-derived).
        assert "avg_bitlen" in res_off.stage_stats

    def test_parallel_checkpoint_rank_spans(self, field_2d):
        from repro.parallel import run_spmd
        from repro.parallel.checkpoint import write_checkpoint
        from repro.parallel.decomposition import slab_bounds
        from repro.core.config import CompressorConfig

        def job(comm):
            lo, hi = slab_bounds(field_2d.shape[0], comm.size, comm.rank)
            return write_checkpoint(comm, field_2d[lo:hi], CompressorConfig(eb=1e-3))

        with telemetry.trace() as tr:
            run_spmd(2, job)
        writes = [r for r in tr.roots if r.name == "checkpoint.write"]
        assert len(writes) == 2
        assert sorted(w.attrs["rank"] for w in writes) == [0, 1]
        assert len({w.tid for w in writes}) == 2
        for w in writes:
            assert w.find("compress") is not None  # rank compress nests inside

    def test_bench_harness_run_record(self):
        from repro.bench.harness import Experiment

        exp = Experiment(name="unit", description="test experiment",
                         func=lambda: "body")
        out = exp.run()
        assert "unit" in out and "body" in out
        rec = exp.last_record
        assert rec["experiment"] == "unit"
        assert rec["seconds"] >= 0
        assert rec["telemetry_enabled"] is True
        assert "metrics" in rec
        json.dumps(rec)  # structured record must be JSON-serializable


class TestPwrelStages:
    def test_pwrel_records_transform_stage(self, field_2d):
        data = np.abs(field_2d) + 1.0
        res = repro.compress(data, eb=1e-3, mode="pwrel")
        for key in ("pwrel_transform_seconds", "compress_seconds",
                    "pwrel_container_seconds", "total_seconds"):
            assert key in res.stage_stats, key
        # The inner pipeline's own stages ride along too.
        assert "quantize_seconds" in res.stage_stats

    def test_pwrel_decompress_stats(self, field_2d):
        data = np.abs(field_2d) + 1.0
        res = repro.compress(data, eb=1e-3, mode="pwrel")
        out = repro.decompress_with_stats(res.archive)
        assert "pwrel_inverse_seconds" in out.stage_stats
        assert "total_seconds" in out.stage_stats
        assert np.all(np.abs(out.data - data) <= 1e-3 * np.abs(data))
