"""Tests for temporal (inter-snapshot) compression."""

import numpy as np
import pytest

from repro.core.config import CompressorConfig
from repro.core.errors import ArchiveError, ConfigError
from repro.core.temporal import TemporalCompressor, TemporalDecompressor


def make_stream(n_frames=8, shape=(96, 96), drift=0.02, seed=0):
    """Slowly evolving smooth field with a persistent fine texture.

    The texture (sub-grid detail frozen in time, like static topographic
    forcing) is what temporal deltas cancel and spatial compression cannot.
    """
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 6, shape[0])
    base = (np.sin(x)[:, None] * np.cos(x)[None, :]).astype(np.float64)
    texture = rng.normal(0, 5e-3, shape)
    frames = []
    state = base.copy()
    for _ in range(n_frames):
        state = state + drift * np.roll(base, rng.integers(0, 3), axis=0)
        frames.append(
            (state + texture + rng.normal(0, 2e-5, shape)).astype(np.float32)
        )
    return frames


EB = 1e-3


class TestTemporalRoundtrip:
    def test_stream_roundtrip_within_bound(self):
        frames = make_stream()
        tc = TemporalCompressor(CompressorConfig(eb=EB, eb_mode="abs"))
        td = TemporalDecompressor()
        for t, frame in enumerate(frames):
            blob = tc.push(frame)
            out = td.pull(blob)
            err = np.abs(frame.astype(np.float64) - out.astype(np.float64)).max()
            assert err <= EB * (1 + 1e-6), f"frame {t}: {err}"

    def test_no_error_accumulation(self):
        """Frame 50's error is no worse than frame 1's."""
        frames = make_stream(n_frames=50)
        tc = TemporalCompressor(
            CompressorConfig(eb=EB, eb_mode="abs"), keyframe_interval=1000
        )
        td = TemporalDecompressor()
        errs = []
        for frame in frames:
            out = td.pull(tc.push(frame))
            errs.append(float(np.abs(frame.astype(np.float64) - out.astype(np.float64)).max()))
        assert max(errs) <= EB * (1 + 1e-6)

    def test_delta_frames_smaller_on_slow_streams(self):
        frames = make_stream(drift=0.001)
        tc = TemporalCompressor(
            CompressorConfig(eb=EB, eb_mode="abs"), keyframe_interval=1000
        )
        sizes = []
        kinds = []
        for frame in frames:
            blob = tc.push(frame)
            sizes.append(len(blob))
            kinds.append(tc.last_info.is_keyframe)
        assert kinds[0] is True
        assert not any(kinds[1:])  # all deltas
        assert np.mean(sizes[1:]) < 0.6 * sizes[0]

    def test_scene_change_falls_back_to_keyframe(self):
        frames = make_stream(n_frames=3)
        rng = np.random.default_rng(9)
        # Scene cut: statistically unrelated field whose residual against the
        # previous frame has strictly more variance than the frame itself.
        frames.append(rng.normal(0, 0.2, frames[0].shape).astype(np.float32))
        tc = TemporalCompressor(
            CompressorConfig(eb=1e-2, eb_mode="abs"), keyframe_interval=1000
        )
        kinds = []
        for frame in frames:
            tc.push(frame)
            kinds.append(tc.last_info.is_keyframe)
        assert kinds[-1] is True  # the cut forced a keyframe

    def test_keyframe_cadence(self):
        frames = make_stream(n_frames=9)
        tc = TemporalCompressor(
            CompressorConfig(eb=EB, eb_mode="abs"), keyframe_interval=4
        )
        kinds = [tc.push(f) and tc.last_info.is_keyframe for f in frames]
        assert kinds[0] and kinds[4] and kinds[8]

    def test_out_of_order_rejected(self):
        frames = make_stream(n_frames=3)
        tc = TemporalCompressor(CompressorConfig(eb=EB, eb_mode="abs"))
        blobs = [tc.push(f) for f in frames]
        td = TemporalDecompressor()
        td.pull(blobs[0])
        with pytest.raises(ArchiveError):
            td.pull(blobs[2])

    def test_garbage_frame_rejected(self):
        td = TemporalDecompressor()
        with pytest.raises(ArchiveError):
            td.pull(b"nope")

    def test_shape_change_rejected(self):
        tc = TemporalCompressor(CompressorConfig(eb=EB, eb_mode="abs"))
        tc.push(np.zeros((8, 8), np.float32))
        with pytest.raises(ConfigError):
            tc.push(np.zeros((9, 8), np.float32))

    def test_requires_abs_bound(self):
        with pytest.raises(ConfigError):
            TemporalCompressor(CompressorConfig(eb=EB, eb_mode="rel"))
