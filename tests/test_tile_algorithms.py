"""Tests proving the Section IV-B.3 tile procedures equal plain partial sums."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.errors import DimensionalityError
from repro.kernels.tile_algorithms import (
    block_scan_1d,
    tile_partial_sum_2d,
    tile_partial_sum_3d,
    warp_inclusive_scan,
)


class TestWarpScan:
    def test_single_warp(self):
        x = np.arange(32, dtype=np.int64)
        np.testing.assert_array_equal(warp_inclusive_scan(x), np.cumsum(x))

    def test_multiple_warps_independent(self):
        x = np.ones(96, dtype=np.int64)
        out = warp_inclusive_scan(x)
        expected = np.tile(np.arange(1, 33), 3)
        np.testing.assert_array_equal(out, expected)

    def test_rejects_partial_warp(self):
        with pytest.raises(DimensionalityError):
            warp_inclusive_scan(np.ones(33, dtype=np.int64))

    @given(hnp.arrays(np.int64, 64, elements=st.integers(-1000, 1000)))
    @settings(max_examples=40, deadline=None)
    def test_property_two_warps(self, x):
        out = warp_inclusive_scan(x)
        np.testing.assert_array_equal(out[:32], np.cumsum(x[:32]))
        np.testing.assert_array_equal(out[32:], np.cumsum(x[32:]))


class TestBlockScan1D:
    @pytest.mark.parametrize("n,seq", [(256, 8), (512, 8), (1024, 4), (256, 1)])
    def test_matches_cumsum(self, n, seq):
        rng = np.random.default_rng(0)
        x = rng.integers(-50, 50, n).astype(np.int64)
        np.testing.assert_array_equal(block_scan_1d(x, seq=seq), np.cumsum(x))

    def test_cusz_chunk_size(self):
        """The paper's 1-D chunk of 256 with sequentiality 8 = one warp."""
        rng = np.random.default_rng(1)
        x = rng.integers(-9, 9, 256).astype(np.int64)
        np.testing.assert_array_equal(block_scan_1d(x, seq=8), np.cumsum(x))

    def test_rejects_ragged(self):
        with pytest.raises(DimensionalityError):
            block_scan_1d(np.ones(100, dtype=np.int64), seq=8)


class TestTile2D:
    def test_matches_two_pass_cumsum(self):
        rng = np.random.default_rng(2)
        tile = rng.integers(-20, 20, (16, 16)).astype(np.int64)
        expected = np.cumsum(np.cumsum(tile, axis=1), axis=0)
        np.testing.assert_array_equal(tile_partial_sum_2d(tile), expected)

    @pytest.mark.parametrize("seq", [1, 2, 4, 8, 16])
    def test_sequentiality_invariant(self, seq):
        """Any sequentiality choice gives the same (correct) result -- the
        tuning knob only affects performance."""
        rng = np.random.default_rng(3)
        tile = rng.integers(-5, 5, (16, 16)).astype(np.int64)
        expected = np.cumsum(np.cumsum(tile, axis=1), axis=0)
        np.testing.assert_array_equal(tile_partial_sum_2d(tile, seq=seq), expected)

    def test_rejects_bad_seq(self):
        with pytest.raises(DimensionalityError):
            tile_partial_sum_2d(np.ones((16, 16), dtype=np.int64), seq=5)

    @given(
        hnp.arrays(np.int64, (16, 16), elements=st.integers(-100, 100)),
    )
    @settings(max_examples=30, deadline=None)
    def test_property(self, tile):
        expected = np.cumsum(np.cumsum(tile, axis=1), axis=0)
        np.testing.assert_array_equal(tile_partial_sum_2d(tile), expected)


class TestTile3D:
    def test_matches_three_pass_cumsum(self):
        rng = np.random.default_rng(4)
        tile = rng.integers(-9, 9, (8, 8, 8)).astype(np.int64)
        expected = np.cumsum(np.cumsum(np.cumsum(tile, axis=2), axis=1), axis=0)
        np.testing.assert_array_equal(tile_partial_sum_3d(tile), expected)

    def test_reconstructs_lorenzo_chunk(self):
        """Feeding Lorenzo deltas through the tile kernel reconstructs the
        chunk -- the full decompression path at tile granularity."""
        from repro.core.lorenzo import lorenzo_construct

        rng = np.random.default_rng(5)
        chunk = rng.integers(-1000, 1000, (8, 8, 8)).astype(np.int64)
        delta = lorenzo_construct(chunk, (8, 8, 8))
        np.testing.assert_array_equal(tile_partial_sum_3d(delta), chunk)

    def test_rejects_2d(self):
        with pytest.raises(DimensionalityError):
            tile_partial_sum_3d(np.ones((8, 8), dtype=np.int64))
