"""Tests for madogram/variogram smoothness estimation (Section III-B.2)."""

import numpy as np
import pytest

from repro.analysis.variogram import (
    adjacent_roughness,
    binary_roughness,
    empirical_variogram,
    expected_rle_compression_ratio,
    smoothness,
    smoothness_to_expected_run_length,
)


class TestEmpiricalVariogram:
    def test_constant_stream_zero_variance(self):
        stream = np.full(5000, 3, dtype=np.int64)
        for kind in ("squared", "absolute", "binary"):
            v = empirical_variogram(stream, kind=kind, n_samples=2000)
            assert v.mean() == 0.0

    def test_alternating_stream_binary(self):
        stream = np.tile([0, 1], 5000)
        v = empirical_variogram(stream, kind="binary", n_samples=5000, seed=1)
        # Pairs at even distance agree, odd distance differ: mean about 0.5.
        assert 0.4 < v.mean() < 0.6

    def test_squared_vs_absolute_scaling(self):
        rng = np.random.default_rng(0)
        stream = rng.normal(0, 10, 20000)
        sq = empirical_variogram(stream, kind="squared", n_samples=5000).mean()
        ab = empirical_variogram(stream, kind="absolute", n_samples=5000).mean()
        assert sq > ab  # variance >> mean abs dev for sigma=10

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            empirical_variogram(np.arange(100), kind="cubic")

    def test_too_short_stream(self):
        with pytest.raises(ValueError):
            empirical_variogram(np.array([1]))

    def test_distances_capped_by_stream(self):
        v = empirical_variogram(np.arange(50), max_distance=200, n_samples=1000)
        assert v.distances.max() <= 49

    def test_deterministic_with_seed(self):
        stream = np.random.default_rng(3).integers(0, 5, 5000)
        a = empirical_variogram(stream, seed=7).mean()
        b = empirical_variogram(stream, seed=7).mean()
        assert a == b

    def test_quantcode_smoother_than_raw(self, field_2d):
        """Fig. 2a's observation: quant-codes have less variance than the
        prequantized originals at every distance."""
        from repro.core.dual_quant import prequantize, postquantize

        eb = 1e-2 * float(field_2d.max() - field_2d.min())
        dq = prequantize(field_2d, eb)
        quant, _, _ = postquantize(dq, (16, 16), 1024)
        v_raw = empirical_variogram(dq, kind="absolute", n_samples=20000).mean()
        v_q = empirical_variogram(
            quant.astype(np.int64) - 512, kind="absolute", n_samples=20000
        ).mean()
        assert v_q < v_raw


class TestSmoothness:
    def test_range(self):
        rng = np.random.default_rng(1)
        s = smoothness(rng.integers(0, 100, 10000))
        assert 0.0 <= s <= 1.0

    def test_smooth_beats_rough(self):
        smooth_stream = np.repeat(np.arange(100), 100)
        rough_stream = np.random.default_rng(2).integers(0, 1000, 10000)
        assert smoothness(smooth_stream) > smoothness(rough_stream)

    def test_adjacent_roughness_exact(self):
        assert adjacent_roughness(np.array([1, 1, 2, 2, 2, 3])) == pytest.approx(2 / 5)

    def test_adjacent_roughness_degenerate(self):
        assert adjacent_roughness(np.array([5])) == 0.0

    def test_run_length_mapping(self):
        assert smoothness_to_expected_run_length(0.0) == 1.0
        assert smoothness_to_expected_run_length(0.9) == pytest.approx(10.0)
        assert smoothness_to_expected_run_length(1.0) == float("inf")
        with pytest.raises(ValueError):
            smoothness_to_expected_run_length(1.5)

    def test_expected_cr_monotone_in_smoothness(self):
        crs = [expected_rle_compression_ratio(s) for s in (0.5, 0.9, 0.99)]
        assert crs[0] < crs[1] < crs[2]

    def test_expected_cr_threshold_32(self):
        """Fig. 2b: CR 32 maps to a specific smoothness; check the mapping
        crosses 32 between s=0.96 and s=0.98 for float32/u16 tuples."""
        assert expected_rle_compression_ratio(0.96) < 32 < expected_rle_compression_ratio(0.98)
