"""Tests for workflow section emit/read plumbing and the bench harness."""

import numpy as np
import pytest

from repro.bench.harness import ascii_series, format_table
from repro.core.archive import ArchiveBuilder, ArchiveReader
from repro.core.config import CompressorConfig
from repro.core.errors import ArchiveError
from repro.core.workflow import (
    emit_huffman_sections,
    emit_rle_sections,
    read_huffman_sections,
    read_rle_sections,
)
from repro.encoding.huffman import CanonicalCodebook, build_codebook


class TestHuffmanSections:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        syms = rng.integers(0, 64, 5000).astype(np.uint16)
        builder = ArchiveBuilder()
        stats = emit_huffman_sections(syms, 64, 512, builder)
        reader = ArchiveReader(builder.to_bytes())
        out = read_huffman_sections(reader, syms.size, 512)
        np.testing.assert_array_equal(out, syms)
        assert stats["avg_bitlen"] >= 1.0

    def test_prefix_isolation(self):
        """Two Huffman groups with different prefixes coexist."""
        rng = np.random.default_rng(1)
        a = rng.integers(0, 16, 1000).astype(np.uint16)
        b = rng.integers(0, 16, 500).astype(np.uint16)
        builder = ArchiveBuilder()
        emit_huffman_sections(a, 16, 128, builder, prefix="qa")
        emit_huffman_sections(b, 16, 128, builder, prefix="qb")
        reader = ArchiveReader(builder.to_bytes())
        np.testing.assert_array_equal(read_huffman_sections(reader, 1000, 128, "qa"), a)
        np.testing.assert_array_equal(read_huffman_sections(reader, 500, 128, "qb"), b)


class TestRleSections:
    def _roundtrip(self, quant, with_vle):
        config = CompressorConfig(eb=1e-2)
        builder = ArchiveBuilder()
        stats = emit_rle_sections(quant, config, builder, with_vle=with_vle)
        reader = ArchiveReader(builder.to_bytes())
        out = read_rle_sections(
            reader, quant.size, int(stats["n_runs"]), config, quant_dtype=np.uint16
        )
        return out, stats, builder

    def test_raw_roundtrip(self):
        quant = np.repeat(np.arange(500, 520), 100).astype(np.uint16)
        out, stats, builder = self._roundtrip(quant, with_vle=False)
        np.testing.assert_array_equal(out, quant)
        assert "r.val" in builder.section_sizes()
        assert "r.len" in builder.section_sizes()

    def test_vle_roundtrip(self):
        rng = np.random.default_rng(2)
        # Geometric run lengths: low-entropy metadata, so the sparse-codebook
        # length VLE actually wins over raw uint16 storage.
        quant = np.repeat(
            rng.integers(500, 524, 3000), rng.geometric(0.25, 3000)
        ).astype(np.uint16)
        out, stats, builder = self._roundtrip(quant, with_vle=True)
        np.testing.assert_array_equal(out, quant)
        sections = builder.section_sizes()
        assert "rv.cb" in sections  # values VLE'd
        assert "rl.cb" in sections  # lengths VLE'd (sparse codebook)

    def test_vle_falls_back_when_stream_tiny(self):
        quant = np.full(100, 512, dtype=np.uint16)  # one run
        out, stats, builder = self._roundtrip(quant, with_vle=True)
        np.testing.assert_array_equal(out, quant)
        assert "r.val" in builder.section_sizes()  # dense codebook too big
        assert stats.get("vle_skipped") == 1.0

    def test_run_count_validated(self):
        quant = np.repeat(np.arange(500, 505), 50).astype(np.uint16)
        config = CompressorConfig(eb=1e-2)
        builder = ArchiveBuilder()
        stats = emit_rle_sections(quant, config, builder, with_vle=False)
        reader = ArchiveReader(builder.to_bytes())
        with pytest.raises(ArchiveError):
            read_rle_sections(reader, quant.size, int(stats["n_runs"]) + 1, config)


class TestSparseCodebook:
    def test_sparse_roundtrip(self):
        freqs = np.zeros(65536, dtype=np.int64)
        freqs[[1, 17, 900, 65535]] = [100, 50, 10, 3]
        book = build_codebook(freqs)
        raw = book.serialized_sparse()
        assert len(raw) < 100  # vs 64 KiB dense
        restored = CanonicalCodebook.deserialized_sparse(raw)
        np.testing.assert_array_equal(restored.lengths, book.lengths)
        np.testing.assert_array_equal(restored.codes, book.codes)

    def test_sparse_rejects_garbage(self):
        from repro.core.errors import EncodingError

        with pytest.raises(EncodingError):
            CanonicalCodebook.deserialized_sparse(b"abc")
        with pytest.raises(EncodingError):
            CanonicalCodebook.deserialized_sparse(b"\x00" * 32)


class TestHarnessFormatting:
    def test_format_table_alignment(self):
        out = format_table(["name", "v"], [["a", 1.234], ["bb", 10.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.23" in out and "10.5" in out

    def test_format_table_none_dash(self):
        out = format_table(["n", "v"], [["x", None]])
        assert "-" in out.splitlines()[-1]

    def test_ascii_series_renders(self):
        out = ascii_series([1, 2, 3], {"s": [1.0, 4.0, 9.0]}, width=20, height=5)
        assert "s" in out and "9" in out

    def test_experiment_registry(self):
        from repro.bench import all_experiments, get_experiment

        exps = all_experiments()
        for name in ("table1", "table2", "table4", "table5", "table6", "table7",
                      "fig1", "fig2a", "fig2b", "fig3", "table3"):
            assert name in exps
        assert get_experiment("fig3").run()
        with pytest.raises(KeyError):
            get_experiment("table99")
